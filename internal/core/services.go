package core

import (
	"errors"
	"fmt"

	"air/internal/apex"
	"air/internal/hm"
	"air/internal/mmu"
	"air/internal/model"
	"air/internal/pos"
	"air/internal/tick"
)

// stopSentinel is panicked by a process terminating itself (StopSelf,
// self-affecting recovery); the spawn wrapper converts it into a yieldDone.
type stopSentinel struct{}

// Services is the APEX interface instance of one partition (paper Sect. 2.3)
// bound, when invoked from application code, to the calling process. Service
// calls from initialization or error-handler context (kernel context) have
// no process binding: blocking services return InvalidMode there.
type Services struct {
	mod *Module
	pt  *Partition
	pid pos.ProcessID
	rt  *procRuntime
}

// --- handshake helpers -----------------------------------------------------

func (sv *Services) inProcess() bool {
	return sv.rt != nil && sv.pid != pos.InvalidProcess
}

// blockSelf parks the calling process after the kernel marked it waiting.
func (sv *Services) blockSelf() {
	sv.rt.yield <- yieldBlocked
	sv.rt.waitGrant()
}

func (sv *Services) myProc() *pos.Process {
	p, err := sv.pt.kernel.Get(sv.pid)
	if err != nil {
		return nil
	}
	return p
}

func (sv *Services) myName() string {
	if p := sv.myProc(); p != nil {
		return p.Spec.Name
	}
	return ""
}

// terminateSelf ends the calling process goroutine after kernel-side state
// was settled; never returns.
func (sv *Services) terminateSelf() {
	sv.rt.alive = false
	panic(stopSentinel{})
}

// wakeDeadline converts a relative timeout into the absolute wake instant.
func (sv *Services) wakeDeadline(timeout tick.Ticks) tick.Ticks {
	if timeout.IsInfinite() {
		return tick.Infinity
	}
	return sv.mod.now + timeout
}

// --- time management --------------------------------------------------------

// GetTime implements GET_TIME: the global system clock tick counter.
func (sv *Services) GetTime() tick.Ticks { return sv.mod.now }

// Compute consumes n ticks of processor time — the simulation's model of
// application computation. It is the only way application code spends time.
func (sv *Services) Compute(n tick.Ticks) {
	if !sv.inProcess() {
		return
	}
	for i := tick.Ticks(0); i < n; i++ {
		sv.rt.yield <- yieldConsumed
		sv.rt.waitGrant()
	}
}

// TimedWait implements TIMED_WAIT: the process waits for at least the given
// delay.
func (sv *Services) TimedWait(delay tick.Ticks) apex.ReturnCode {
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	if delay < 0 || delay.IsInfinite() {
		return apex.InvalidParam
	}
	if err := sv.pt.kernel.Block(sv.pid, pos.WaitDelay, sv.mod.now+delay); err != nil {
		return apex.InvalidMode
	}
	sv.blockSelf()
	return apex.NoError
}

// PeriodicWait implements PERIODIC_WAIT: the periodic process suspends until
// its next release point (Sect. 5.2).
func (sv *Services) PeriodicWait() apex.ReturnCode {
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	if err := sv.pt.kernel.PeriodicWait(sv.pid); err != nil {
		if errors.Is(err, pos.ErrNotPeriodic) {
			return apex.InvalidMode
		}
		return apex.InvalidMode
	}
	sv.blockSelf()
	return apex.NoError
}

// Replenish implements REPLENISH: the process's deadline time is postponed
// to now + budget (Sect. 5.2, Fig. 6).
func (sv *Services) Replenish(budget tick.Ticks) apex.ReturnCode {
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	if budget <= 0 || budget.IsInfinite() {
		return apex.InvalidParam
	}
	if err := sv.pt.kernel.Replenish(sv.pid, budget); err != nil {
		return apex.InvalidMode
	}
	return apex.NoError
}

// --- process management ------------------------------------------------------

// CreateProcess implements CREATE_PROCESS. Processes may only be created
// while the partition is initializing (coldStart/warmStart mode). Creating a
// process that already exists with the same attributes returns NoAction with
// the existing ID, making warm-start initialization idempotent.
func (sv *Services) CreateProcess(spec model.TaskSpec, body ProcessBody) (pos.ProcessID, apex.ReturnCode) {
	if sv.pt.mode == model.ModeNormal {
		return pos.InvalidProcess, apex.InvalidMode
	}
	if existing, err := sv.pt.kernel.Lookup(spec.Name); err == nil {
		if existing.Spec == spec {
			sv.pt.bodies[existing.ID] = body
			delete(sv.pt.forkable, existing.ID)
			return existing.ID, apex.NoAction
		}
		return pos.InvalidProcess, apex.InvalidConfig
	}
	id, err := sv.pt.kernel.Create(spec)
	if err != nil {
		return pos.InvalidProcess, apex.InvalidParam
	}
	sv.pt.bodies[id] = body
	return id, apex.NoError
}

// CreateForkableProcess implements CREATE_PROCESS for a body written in the
// snapshot/fork-portable form: explicit state in a cell the runtime can
// deep-copy (ForkableBody) instead of closure variables it cannot. The
// rules are identical to CreateProcess — initialization mode only,
// idempotent re-registration across warm starts. Only processes created
// through this entry point survive Module.Snapshot validation while live.
func (sv *Services) CreateForkableProcess(spec model.TaskSpec, fb ForkableBody) (pos.ProcessID, apex.ReturnCode) {
	if fb.New == nil || fb.Clone == nil || fb.Run == nil {
		return pos.InvalidProcess, apex.InvalidParam
	}
	if sv.pt.mode == model.ModeNormal {
		return pos.InvalidProcess, apex.InvalidMode
	}
	if existing, err := sv.pt.kernel.Lookup(spec.Name); err == nil {
		if existing.Spec == spec {
			sv.pt.forkable[existing.ID] = fb
			delete(sv.pt.bodies, existing.ID)
			return existing.ID, apex.NoAction
		}
		return pos.InvalidProcess, apex.InvalidConfig
	}
	id, err := sv.pt.kernel.Create(spec)
	if err != nil {
		return pos.InvalidProcess, apex.InvalidParam
	}
	sv.pt.forkable[id] = fb
	return id, apex.NoError
}

// StartProcess implements START for another (or the calling) process: the
// dormant process is initialized and becomes ready; its deadline is
// registered with the PAL (Fig. 6).
func (sv *Services) StartProcess(name string) apex.ReturnCode {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return apex.InvalidParam
	}
	if err := sv.pt.kernel.Start(proc.ID); err != nil {
		return apex.NoAction // not dormant
	}
	sv.pt.spawn(proc.ID)
	return apex.NoError
}

// DelayedStartProcess implements DELAYED_START.
func (sv *Services) DelayedStartProcess(name string, delay tick.Ticks) apex.ReturnCode {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return apex.InvalidParam
	}
	if delay < 0 || delay.IsInfinite() {
		return apex.InvalidParam
	}
	if err := sv.pt.kernel.DelayedStart(proc.ID, delay); err != nil {
		return apex.NoAction
	}
	sv.pt.spawn(proc.ID)
	return apex.NoError
}

// StopProcess implements STOP for another process: it becomes dormant and
// its deadline is unregistered. Stopping the calling process itself is
// StopSelf.
func (sv *Services) StopProcess(name string) apex.ReturnCode {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return apex.InvalidParam
	}
	if sv.inProcess() && proc.ID == sv.pid {
		sv.StopSelf()
		return apex.NoError // unreachable; StopSelf never returns
	}
	if proc.State == model.StateDormant {
		return apex.NoAction
	}
	_ = sv.pt.kernel.Stop(proc.ID)
	sv.pt.killProcess(proc.ID)
	return apex.NoError
}

// StopSelf implements STOP_SELF; it never returns.
func (sv *Services) StopSelf() {
	if !sv.inProcess() {
		return
	}
	_ = sv.pt.kernel.Stop(sv.pid)
	sv.terminateSelf()
}

// SuspendProcess implements SUSPEND for another process.
func (sv *Services) SuspendProcess(name string) apex.ReturnCode {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return apex.InvalidParam
	}
	if err := sv.pt.kernel.Suspend(proc.ID); err != nil {
		return apex.InvalidMode
	}
	return apex.NoError
}

// SuspendSelf implements SUSPEND_SELF (unbounded): the process waits until
// another process resumes it.
func (sv *Services) SuspendSelf() apex.ReturnCode {
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	if err := sv.pt.kernel.Suspend(sv.pid); err != nil {
		return apex.InvalidMode
	}
	sv.blockSelf()
	return apex.NoError
}

// ResumeProcess implements RESUME.
func (sv *Services) ResumeProcess(name string) apex.ReturnCode {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return apex.InvalidParam
	}
	if err := sv.pt.kernel.Resume(proc.ID); err != nil {
		return apex.InvalidMode
	}
	return apex.NoError
}

// SetPriority implements SET_PRIORITY: changes the current priority p'.
func (sv *Services) SetPriority(name string, prio model.Priority) apex.ReturnCode {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return apex.InvalidParam
	}
	if err := sv.pt.kernel.SetPriority(proc.ID, prio); err != nil {
		return apex.InvalidMode
	}
	return apex.NoError
}

// GetProcessID implements GET_PROCESS_ID.
func (sv *Services) GetProcessID(name string) (pos.ProcessID, apex.ReturnCode) {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return pos.InvalidProcess, apex.InvalidConfig
	}
	return proc.ID, apex.NoError
}

// GetMyID implements GET_MY_ID.
func (sv *Services) GetMyID() (pos.ProcessID, apex.ReturnCode) {
	if !sv.inProcess() {
		return pos.InvalidProcess, apex.InvalidMode
	}
	return sv.pid, apex.NoError
}

// MyName returns the calling process's name ("" in kernel context).
func (sv *Services) MyName() string { return sv.myName() }

// GetProcessStatus implements GET_PROCESS_STATUS: the status S(t) of
// eq. (12) plus static attributes.
func (sv *Services) GetProcessStatus(name string) (apex.ProcessStatus, apex.ReturnCode) {
	proc, err := sv.pt.kernel.Lookup(name)
	if err != nil {
		return apex.ProcessStatus{}, apex.InvalidConfig
	}
	return apex.ProcessStatus{
		Name:            proc.Spec.Name,
		State:           proc.State,
		BasePriority:    proc.Spec.BasePriority,
		CurrentPriority: proc.CurrentPriority,
		DeadlineTime:    proc.Deadline,
		HasDeadline:     proc.HasDeadline,
		Period:          proc.Spec.Period,
		TimeCapacity:    proc.Spec.Deadline,
		Periodic:        proc.Spec.Periodic,
	}, apex.NoError
}

// LockPreemption / UnlockPreemption implement LOCK_PREEMPTION and
// UNLOCK_PREEMPTION on the partition's POS scheduler.
func (sv *Services) LockPreemption() int { return sv.pt.kernel.LockPreemption() }

// UnlockPreemption decrements the preemption lock level.
func (sv *Services) UnlockPreemption() int { return sv.pt.kernel.UnlockPreemption() }

// DisableClockInterrupts models a guest OS attempting to disable the system
// clock; the paravirtualization layer always denies it (Sect. 2.5).
func (sv *Services) DisableClockInterrupts() error {
	return sv.pt.kernel.DisableClockInterrupts()
}

// --- partition management ----------------------------------------------------

// GetPartitionStatus implements GET_PARTITION_STATUS.
func (sv *Services) GetPartitionStatus() apex.PartitionStatus {
	return apex.PartitionStatus{
		Name:       sv.pt.name,
		Mode:       sv.pt.mode,
		StartCount: sv.pt.startCount,
		System:     sv.pt.system,
		LockLevel:  sv.pt.kernel.LockLevel(),
	}
}

// SetPartitionMode implements SET_PARTITION_MODE. Setting NORMAL ends
// initialization and enables process scheduling. IDLE shuts the partition
// down; COLD_START and WARM_START restart it. Restart/shutdown requested
// from a process terminates the calling process as part of the transition.
func (sv *Services) SetPartitionMode(mode model.OperatingMode) apex.ReturnCode {
	switch mode {
	case model.ModeNormal:
		if sv.pt.mode == model.ModeNormal {
			return apex.NoAction
		}
		sv.pt.mode = model.ModeNormal
		return apex.NoError
	case model.ModeIdle, model.ModeColdStart, model.ModeWarmStart:
		if !sv.inProcess() {
			// From init/handler context a restart request would recurse
			// into init; only idle is applicable.
			if mode == model.ModeIdle {
				sv.pt.stop()
				return apex.NoError
			}
			return apex.InvalidMode
		}
		sv.pt.deferredMode = mode
		_ = sv.pt.kernel.Stop(sv.pid)
		sv.terminateSelf()
		return apex.NoError // unreachable
	default:
		return apex.InvalidParam
	}
}

// --- module schedule services (ARINC 653 Part 2, Sect. 4.2) -------------------

// SetModuleSchedule implements SET_MODULE_SCHEDULE: requests the schedule
// that will start executing at the top of the next MTF. Only system
// partitions are authorized.
func (sv *Services) SetModuleSchedule(id model.ScheduleID) apex.ReturnCode {
	if !sv.pt.system {
		return apex.InvalidConfig
	}
	st := sv.mod.sched.Status()
	if err := sv.mod.sched.RequestSwitch(id); err != nil {
		return apex.InvalidParam
	}
	if st.Next != id {
		sv.mod.traceEvent(Event{Time: sv.mod.now, Kind: EvScheduleSwitch,
			Partition: sv.pt.name,
			Detail:    "requested schedule " + sv.scheduleName(id)})
	}
	return apex.NoError
}

// SetModuleScheduleByName resolves a schedule name and requests the switch.
func (sv *Services) SetModuleScheduleByName(name string) apex.ReturnCode {
	_, id, ok := sv.mod.sys.ScheduleByName(name)
	if !ok {
		return apex.InvalidParam
	}
	return sv.SetModuleSchedule(id)
}

// GetModuleScheduleStatus implements GET_MODULE_SCHEDULE_STATUS.
func (sv *Services) GetModuleScheduleStatus() apex.ModuleScheduleStatus {
	return sv.mod.scheduleStatus()
}

func (m *Module) scheduleStatus() apex.ModuleScheduleStatus {
	st := m.sched.Status()
	return apex.ModuleScheduleStatus{
		LastSwitch:  st.LastSwitch,
		Current:     st.Current,
		Next:        st.Next,
		CurrentName: m.sys.Schedules[st.Current].Name,
		NextName:    m.sys.Schedules[st.Next].Name,
	}
}

func (sv *Services) scheduleName(id model.ScheduleID) string {
	if s, ok := sv.mod.sys.Schedule(id); ok {
		return s.Name
	}
	return "?"
}

// --- health monitoring services ------------------------------------------------

// ReportApplicationMessage implements REPORT_APPLICATION_MESSAGE: the
// message is recorded in the module trace.
func (sv *Services) ReportApplicationMessage(msg string) apex.ReturnCode {
	sv.mod.traceEvent(Event{Time: sv.mod.now, Kind: EvApplicationMessage,
		Partition: sv.pt.name, Process: sv.myName(), Detail: msg})
	return apex.NoError
}

// RaiseApplicationError implements RAISE_APPLICATION_ERROR: a process-level
// APPLICATION_ERROR is reported to health monitoring and the decided
// recovery action applied. If the action affects the calling process (stop,
// restart, partition restart), the call does not return.
func (sv *Services) RaiseApplicationError(msg string) apex.ReturnCode {
	name := sv.myName()
	decision := sv.mod.health.ReportProcess(sv.pt.name, name, hm.ErrApplicationError, msg)
	switch decision.Action {
	case hm.ActionIgnore:
		return apex.NoError
	case hm.ActionInvokeHandler:
		if sv.pt.handler != nil {
			sv.pt.handler(sv.pt.services(pos.InvalidProcess, nil), decision.Event)
		}
		return apex.NoError
	default:
		if !sv.inProcess() {
			sv.pt.applyProcessDecision(name, decision)
			return apex.NoError
		}
		sv.pt.pendingFaultDecision = &faultDecision{name: name, decision: decision}
		_ = sv.pt.kernel.Stop(sv.pid)
		sv.terminateSelf()
		return apex.NoError // unreachable
	}
}

// CreateErrorHandler implements CREATE_ERROR_HANDLER: installs the
// partition's application error handler (Sect. 2.4: "process level errors
// will cause an application error handler to be invoked").
func (sv *Services) CreateErrorHandler(handler ErrorHandler) apex.ReturnCode {
	if handler == nil {
		return apex.InvalidParam
	}
	sv.pt.handler = handler
	sv.mod.health.SetHandlerInstalled(sv.pt.name, true)
	return apex.NoError
}

// --- spatial partitioning services ---------------------------------------------

// MemWrite stores data at a virtual address of the calling partition's
// addressing space, at application privilege. A spatial partitioning fault
// is confined: it is reported to health monitoring as a partition-level
// MEMORY_VIOLATION and the decided recovery action applied.
func (sv *Services) MemWrite(va mmu.VirtAddr, data []byte) apex.ReturnCode {
	return sv.memAccess(func() error {
		return sv.mod.memory.WriteIn(sv.pt.name, va, data, mmu.PrivApp)
	})
}

// MemRead loads len(buf) bytes from a virtual address of the calling
// partition's addressing space, at application privilege.
func (sv *Services) MemRead(va mmu.VirtAddr, buf []byte) apex.ReturnCode {
	return sv.memAccess(func() error {
		return sv.mod.memory.ReadIn(sv.pt.name, va, buf, mmu.PrivApp)
	})
}

// StackProbe models a stack frame allocation of the given size by the
// calling process, checked against the partition's stack section. Exceeding
// it raises a process-level STACK_OVERFLOW to health monitoring — one of the
// error classes the paper's Sect. 2.4 lists — whose recovery action is
// applied like any other process-level error; the probe call does not return
// if the action terminates the caller.
func (sv *Services) StackProbe(bytes int) apex.ReturnCode {
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	if bytes < 0 {
		return apex.InvalidParam
	}
	sv.rt.stackUsed += bytes
	if sv.rt.stackUsed <= sv.pt.stackBytes() {
		return apex.NoError
	}
	name := sv.myName()
	decision := sv.mod.health.ReportProcess(sv.pt.name, name, hm.ErrStackOverflow,
		fmt.Sprintf("stack usage %d exceeds stack section %d bytes",
			sv.rt.stackUsed, sv.pt.stackBytes()))
	switch decision.Action {
	case hm.ActionIgnore:
		return apex.InvalidConfig
	case hm.ActionInvokeHandler:
		if sv.pt.handler != nil {
			sv.pt.handler(sv.pt.services(pos.InvalidProcess, nil), decision.Event)
		}
		return apex.InvalidConfig
	default:
		sv.pt.pendingFaultDecision = &faultDecision{name: name, decision: decision}
		_ = sv.pt.kernel.Stop(sv.pid)
		sv.terminateSelf()
		return apex.InvalidConfig // unreachable
	}
}

// StackRelease models returning stack frames (e.g. on leaving a deep call
// chain).
func (sv *Services) StackRelease(bytes int) apex.ReturnCode {
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	if bytes < 0 {
		return apex.InvalidParam
	}
	sv.rt.stackUsed -= bytes
	if sv.rt.stackUsed < 0 {
		sv.rt.stackUsed = 0
	}
	return apex.NoError
}

func (sv *Services) memAccess(access func() error) apex.ReturnCode {
	err := access()
	if err == nil {
		return apex.NoError
	}
	var fault *mmu.Fault
	if !errors.As(err, &fault) {
		return apex.InvalidConfig
	}
	sv.mod.traceEvent(Event{Time: sv.mod.now, Kind: EvMemoryViolation,
		Partition: sv.pt.name, Process: sv.myName(), Detail: fault.Error()})
	decision := sv.mod.health.ReportPartition(sv.pt.name, hm.ErrMemoryViolation, fault.Error())
	if !sv.inProcess() {
		sv.pt.applyPartitionDecision(decision)
		return apex.InvalidConfig
	}
	switch decision.Action {
	case hm.ActionIgnore, hm.ActionInvokeHandler:
		return apex.InvalidConfig
	default:
		sv.pt.pendingPartitionDecision = &decision
		_ = sv.pt.kernel.Stop(sv.pid)
		sv.terminateSelf()
		return apex.InvalidConfig // unreachable
	}
}
