package core

import (
	"fmt"
	"math/rand"
	"testing"

	"air/internal/model"
	"air/internal/sched"
	"air/internal/tick"
)

// TestTemporalPartitioningGuarantee validates the architecture's central
// claim end to end: for randomly synthesized, verified scheduling tables,
// the executed module delivers to every partition exactly the window time
// the table assigns — in every single MTF, regardless of what the
// partitions' processes do (here: CPU hogs that never yield). Robust
// temporal partitioning means misbehaving applications cannot shift window
// boundaries by even one tick.
func TestTemporalPartitioningGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(653))
	for trial := 0; trial < 10; trial++ {
		reqs := []model.Requirement{
			{Partition: "A", Cycle: 100, Budget: tick.Ticks(10 + rng.Intn(30))},
			{Partition: "B", Cycle: 200, Budget: tick.Ticks(10 + rng.Intn(60))},
			{Partition: "C", Cycle: 400, Budget: tick.Ticks(10 + rng.Intn(100))},
		}
		table, err := sched.Synthesize(fmt.Sprintf("guarantee%d", trial), reqs)
		if err != nil {
			continue
		}
		sys := &model.System{
			Partitions: []model.PartitionName{"A", "B", "C"},
			Schedules:  []model.Schedule{*table},
		}
		hogInit := normalInit(func(sv *Services) {
			// A pure CPU hog: computes forever, never yields voluntarily.
			sv.CreateProcess(model.TaskSpec{
				Name: "hog", Deadline: tick.Infinity, BasePriority: 1, WCET: 1,
			}, func(sv *Services) {
				for {
					sv.Compute(1 << 30)
				}
			})
			sv.StartProcess("hog")
		})
		m := startModule(t, Config{
			System:        sys,
			TraceCapacity: -1,
			Partitions: []PartitionConfig{
				{Name: "A", Init: hogInit},
				{Name: "B", Init: hogInit},
				{Name: "C", Init: hogInit},
			},
		})

		const mtfs = 5
		active := make(map[model.PartitionName][]tick.Ticks) // per-MTF counts
		for _, p := range sys.Partitions {
			active[p] = make([]tick.Ticks, mtfs)
		}
		for frame := 0; frame < mtfs; frame++ {
			for i := tick.Ticks(0); i < table.MTF; i++ {
				if err := m.Step(); err != nil {
					t.Fatal(err)
				}
				heir := m.ActivePartition()
				if !heir.Idle {
					active[heir.Partition][frame]++
				}
			}
		}
		for _, p := range sys.Partitions {
			want := table.SuppliedTime(p)
			for frame, got := range active[p] {
				if got != want {
					t.Fatalf("trial %d: partition %s got %d ticks in MTF %d, table assigns %d\nwindows: %v",
						trial, p, got, frame, want, table.WindowsOf(p))
				}
			}
		}
		m.Shutdown()
	}
}

// TestDetectionLatencyBoundedByBlackout validates the Sect. 5 latency
// argument quantitatively: over many fault phases, the observed detection
// latency of a deadline missed while the partition is inactive never
// exceeds the partition's maximum supply blackout (plus the active-case
// one-tick strictness), and the bound is approached.
func TestDetectionLatencyBoundedByBlackout(t *testing.T) {
	sys := model.Fig8System()
	chi1 := &sys.Schedules[0]
	supply := sched.NewSupply(chi1, "P1")
	bound := supply.BlackoutMax() // 1100 for P1 under chi1

	var worst tick.Ticks
	for _, capacity := range []tick.Ticks{150, 199, 210, 500, 900, 1150, 1250} {
		cfg := Config{
			System:        sys,
			TraceCapacity: 64,
			Partitions: []PartitionConfig{
				{Name: "P1", Init: normalInit(func(sv *Services) {
					sv.CreateProcess(model.TaskSpec{
						Name: "f", Period: 1300, Deadline: capacity,
						BasePriority: 1, WCET: tick.Min(capacity, 1300), Periodic: true,
					}, func(sv *Services) {
						for {
							sv.Compute(1 << 30)
						}
					})
					sv.StartProcess("f")
				})},
				{Name: "P2", Init: normalInit(nil)},
				{Name: "P3", Init: normalInit(nil)},
				{Name: "P4", Init: normalInit(nil)},
			},
		}
		m := startModule(t, cfg)
		if err := m.Run(3 * 1300); err != nil {
			t.Fatal(err)
		}
		misses := m.TraceKind(EvDeadlineMiss)
		if len(misses) == 0 {
			t.Fatalf("capacity %d: no miss detected", capacity)
		}
		latency := misses[0].Time - capacity // deadline was at t=capacity
		if latency < 1 {
			t.Fatalf("capacity %d: detection before expiry (latency %d)", capacity, latency)
		}
		if latency > bound+1 {
			t.Errorf("capacity %d: latency %d exceeds blackout bound %d",
				capacity, latency, bound)
		}
		if latency > worst {
			worst = latency
		}
		m.Shutdown()
	}
	// The bound must be approached (within one window length) by some phase.
	if worst < bound-200 {
		t.Errorf("worst observed latency %d far below bound %d; phases too tame", worst, bound)
	}
}
