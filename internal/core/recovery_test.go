package core

import (
	"strings"
	"testing"

	"air/internal/hm"
	"air/internal/mmu"
	"air/internal/model"
	"air/internal/tick"
)

// faultyPartitionInit builds the E3 scenario init: a periodic process whose
// computation (overrun ticks) exceeds its deadline every activation.
func faultyPartitionInit(period, work tick.Ticks) InitFunc {
	return normalInit(func(sv *Services) {
		sv.CreateProcess(periodicTask("faulty", period, 5), func(sv *Services) {
			for {
				sv.Compute(work)
				sv.PeriodicWait()
			}
		})
		sv.StartProcess("faulty")
	})
}

// TestFaultyProcessDetectionPattern is experiment E3, the paper's Sect. 6
// scenario: a faulty process on A never completes its activation; its
// deadline (shorter than the activation cycle) expires while A is inactive,
// and — with the process restarted on each miss, re-arming a fresh deadline
// — "its deadline violation is detected and reported every time (except the
// first)" that A is scheduled and dispatched.
func TestFaultyProcessDetectionPattern(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(model.TaskSpec{
					Name: "faulty", Period: 100, Deadline: 60,
					BasePriority: 5, WCET: 50, Periodic: true,
				}, func(sv *Services) {
					for {
						sv.Compute(1 << 30) // never completes
					}
				})
				sv.StartProcess("faulty")
			}),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionRestartProcess},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	const mtfs = 10
	if err := m.Run(100 * mtfs); err != nil {
		t.Fatal(err)
	}
	misses := m.TraceKind(EvDeadlineMiss)
	// Running ticks 1..1000 dispatches A at t=0, 100, ..., 1000; every
	// dispatch except the first (t=0) detects the restarted process's
	// expired deadline — ten detections.
	if len(misses) != mtfs {
		t.Fatalf("detections = %d, want %d (every dispatch except the first)",
			len(misses), mtfs)
	}
	for i, e := range misses {
		if e.Partition != "A" || e.Process != "faulty" {
			t.Errorf("mis-attributed detection: %v", e)
		}
		if want := tick.Ticks(100 * (i + 1)); e.Time != want {
			t.Errorf("detection %d at t=%d, want %d (dispatch instant)", i, e.Time, want)
		}
	}
	// Detections are confined to A: B saw no HM events.
	if got := m.Health().EventsFor("B"); len(got) != 0 {
		t.Errorf("HM events leaked to B: %v", got)
	}
}

// TestDetectionAtDispatchAfterInactivity verifies the Fig. 7 catch-up path:
// the deadline expires while the partition is inactive and is detected at
// the next dispatch instant, not later.
func TestDetectionAtDispatchAfterInactivity(t *testing.T) {
	// A runs [0,10) of a 100-tick MTF; deadline 30 expires mid-inactivity.
	sys := &model.System{
		Partitions: []model.PartitionName{"A", "B"},
		Schedules: []model.Schedule{{
			Name: "tight", MTF: 100,
			Requirements: []model.Requirement{
				{Partition: "A", Cycle: 100, Budget: 10},
				{Partition: "B", Cycle: 100, Budget: 90},
			},
			Windows: []model.Window{
				{Partition: "A", Offset: 0, Duration: 10},
				{Partition: "B", Offset: 10, Duration: 90},
			},
		}},
	}
	m := startModule(t, Config{
		System: sys,
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(model.TaskSpec{
					Name: "f", Period: 100, Deadline: 30, BasePriority: 1,
					WCET: 20, Periodic: true,
				}, func(sv *Services) {
					for {
						sv.Compute(20) // needs 20 ticks but window is 10
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("f")
			}),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionIgnore},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(150); err != nil {
		t.Fatal(err)
	}
	misses := m.TraceKind(EvDeadlineMiss)
	if len(misses) != 1 {
		t.Fatalf("misses = %v, want exactly 1", misses)
	}
	// Deadline 30 expired during B's window; A is dispatched again at 100:
	// detection exactly then.
	if misses[0].Time != 100 {
		t.Errorf("detected at %d, want 100 (dispatch instant)", misses[0].Time)
	}
}

func TestHMStopProcessAction(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionStopProcess},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	// One miss, then the process is dormant forever.
	if got := len(m.TraceKind(EvDeadlineMiss)); got != 1 {
		t.Fatalf("misses = %d, want 1 (stopped after first)", got)
	}
	pt, _ := m.Partition("A")
	proc, err := pt.Kernel().Lookup("faulty")
	if err != nil {
		t.Fatal(err)
	}
	if proc.State != model.StateDormant {
		t.Errorf("state = %s, want dormant", proc.State)
	}
	if got := len(m.TraceKind(EvProcessStopped)); got != 1 {
		t.Errorf("stop events = %d", got)
	}
}

func TestHMRestartProcessAction(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionRestartProcess},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	// The process keeps being restarted and keeps missing.
	if got := len(m.TraceKind(EvProcessRestarted)); got < 3 {
		t.Errorf("restarts = %d, want several", got)
	}
	pt, _ := m.Partition("A")
	proc, _ := pt.Kernel().Lookup("faulty")
	if proc == nil || proc.State == model.StateDormant {
		t.Error("restarted process should be live")
	}
}

func TestHMPartitionRestartAction(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionColdStartPartition},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	pt, _ := m.Partition("A")
	if pt.StartCount() < 3 {
		t.Errorf("start count = %d, want several cold starts", pt.StartCount())
	}
	if pt.Mode() != model.ModeNormal {
		t.Errorf("mode after restart = %s", pt.Mode())
	}
}

func TestHMLogThresholdEscalation(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{
						Action:     hm.ActionLogThreshold,
						Threshold:  3,
						Escalation: hm.ActionStopProcess,
					},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(2000); err != nil {
		t.Fatal(err)
	}
	// 3 ignored + 1 escalated stop = 4 misses total.
	if got := len(m.TraceKind(EvDeadlineMiss)); got != 4 {
		t.Errorf("misses = %d, want 4 (threshold 3 + escalation)", got)
	}
	pt, _ := m.Partition("A")
	proc, _ := pt.Kernel().Lookup("faulty")
	if proc.State != model.StateDormant {
		t.Errorf("state = %s, want dormant after escalation", proc.State)
	}
}

func TestErrorHandlerInvoked(t *testing.T) {
	var handled []hm.Event
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateErrorHandler(func(hsv *Services, ev hm.Event) {
					handled = append(handled, ev)
					hsv.StopProcess("faulty")
				})
				sv.CreateProcess(periodicTask("faulty", 100, 5), func(sv *Services) {
					for {
						sv.Compute(120)
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("faulty")
			})},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(handled) != 1 {
		t.Fatalf("handler invocations = %d, want 1 (then stopped)", len(handled))
	}
	if handled[0].Code != hm.ErrDeadlineMissed || handled[0].Process != "faulty" {
		t.Errorf("handler event = %+v", handled[0])
	}
}

func TestApplicationPanicContained(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(aperiodicTask("bomb", 1), func(sv *Services) {
					sv.Compute(5)
					panic("numeric overflow in guidance loop")
				})
				sv.StartProcess("bomb")
			})},
			{Name: "B", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(periodicTask("steady", 100, 5), func(sv *Services) {
					for {
						sv.Compute(10)
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("steady")
			})},
		},
	})
	if err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	// The panic surfaced as an APPLICATION_ERROR confined to A.
	if got := m.Health().Count(hm.ErrApplicationError); got != 1 {
		t.Fatalf("application errors = %d, want 1", got)
	}
	events := m.Health().EventsFor("A")
	if len(events) != 1 || !strings.Contains(events[0].Message, "numeric overflow") {
		t.Errorf("HM events = %v", events)
	}
	// B kept running.
	if got := m.Health().EventsFor("B"); len(got) != 0 {
		t.Errorf("B affected: %v", got)
	}
	pt, _ := m.Partition("B")
	proc, _ := pt.Kernel().Lookup("steady")
	if proc.State == model.StateDormant {
		t.Error("B's process stopped")
	}
}

func TestRaiseApplicationError(t *testing.T) {
	var handled int
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateErrorHandler(func(hsv *Services, ev hm.Event) { handled++ })
				sv.CreateProcess(aperiodicTask("app", 1), func(sv *Services) {
					sv.Compute(1)
					if rc := sv.RaiseApplicationError("sensor disagreement"); rc != 0 {
						t.Errorf("RaiseApplicationError rc = %v", rc)
					}
					sv.Compute(1)
				})
				sv.StartProcess("app")
			})},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Errorf("handler invoked %d times, want 1", handled)
	}
}

func TestRaiseApplicationErrorSelfStop(t *testing.T) {
	// Without a handler the default rule stops the faulty process; the call
	// must not return.
	var after bool
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(aperiodicTask("app", 1), func(sv *Services) {
					sv.Compute(1)
					sv.RaiseApplicationError("fatal")
					after = true
				})
				sv.StartProcess("app")
			})},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	if after {
		t.Error("RaiseApplicationError returned despite stop action")
	}
	pt, _ := m.Partition("A")
	proc, _ := pt.Kernel().Lookup("app")
	if proc.State != model.StateDormant {
		t.Errorf("state = %s, want dormant", proc.State)
	}
}

// TestMemoryViolationConfinementIntegration is experiment F7 end to end: a
// process writing outside its partition's addressing space triggers a
// MEMORY_VIOLATION handled per the partition HM table, and the partition is
// restarted without affecting the other partition.
func TestMemoryViolationConfinementIntegration(t *testing.T) {
	var bWrites int
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(aperiodicTask("rogue", 1), func(sv *Services) {
					sv.Compute(1)
					// In-space write succeeds.
					if rc := sv.MemWrite(0x0010_0000, []byte("ok")); rc != 0 {
						t.Errorf("in-space write rc = %v", rc)
					}
					// Out-of-space write faults; partition cold-starts, so
					// this call never returns.
					sv.MemWrite(0x0900_0000, []byte("attack"))
					t.Error("rogue survived the violation")
				})
				sv.StartProcess("rogue")
			}),
				HMPartitionTable: hm.Table{
					hm.ErrMemoryViolation: hm.Rule{Action: hm.ActionColdStartPartition},
				}},
			{Name: "B", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(periodicTask("fine", 100, 5), func(sv *Services) {
					for {
						sv.Compute(10)
						sv.MemWrite(0x0010_0000, []byte{1, 2, 3})
						bWrites++
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("fine")
			})},
		},
	})
	if err := m.Run(400); err != nil {
		t.Fatal(err)
	}
	if got := m.Health().Count(hm.ErrMemoryViolation); got < 1 {
		t.Fatal("no memory violation reported")
	}
	if got := len(m.TraceKind(EvMemoryViolation)); got < 1 {
		t.Fatal("no memory violation traced")
	}
	pt, _ := m.Partition("A")
	if pt.StartCount() < 2 {
		t.Errorf("A start count = %d, want restart", pt.StartCount())
	}
	if bWrites < 3 {
		t.Errorf("B writes = %d; B should be unaffected", bWrites)
	}
}

func TestHMShutdownModuleAction(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionShutdownModule},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(2000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("module should have halted")
	}
	if got := len(m.TraceKind(EvModuleHalt)); got != 1 {
		t.Errorf("halt events = %d", got)
	}
}

func TestHMResetModuleAction(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{
						Action: hm.ActionLogThreshold, Threshold: 2,
						Escalation: hm.ActionResetModule,
					},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(2000); err != nil {
		t.Fatal(err)
	}
	if m.Halted() {
		t.Fatal("reset must not halt the module")
	}
	if got := len(m.TraceKind(EvModuleReset)); got < 1 {
		t.Error("no module reset traced")
	}
	ptB, _ := m.Partition("B")
	if ptB.StartCount() < 2 {
		t.Errorf("B start count = %d; reset should cold start all partitions", ptB.StartCount())
	}
}

func TestSetPartitionModeTransitions(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(aperiodicTask("boot", 1), func(sv *Services) {
					sv.Compute(5)
					// Restart once, then (on the second incarnation's
					// StartCount) go idle.
					if sv.GetPartitionStatus().StartCount == 1 {
						sv.SetPartitionMode(model.ModeColdStart)
						t.Error("unreachable after cold start request")
					}
					sv.Compute(5)
					sv.SetPartitionMode(model.ModeIdle)
					t.Error("unreachable after idle request")
				})
				sv.StartProcess("boot")
			})},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(600); err != nil {
		t.Fatal(err)
	}
	pt, _ := m.Partition("A")
	if pt.StartCount() != 2 {
		t.Errorf("start count = %d, want 2", pt.StartCount())
	}
	if pt.Mode() != model.ModeIdle {
		t.Errorf("mode = %s, want idle", pt.Mode())
	}
	if got := len(m.TraceKind(EvPartitionStopped)); got != 1 {
		t.Errorf("stopped events = %d", got)
	}
}

func TestDefaultDescriptorsInstalled(t *testing.T) {
	m := startModule(t, Config{
		System:     twoPartitionSystem(),
		Partitions: []PartitionConfig{{Name: "A"}, {Name: "B"}},
	})
	if got := m.Memory().MappedPages("A"); got != 96 {
		t.Errorf("A mapped pages = %d, want 96 (16+64+16)", got)
	}
	if got := len(m.Memory().Descriptors("B")); got != 3 {
		t.Errorf("B descriptors = %d, want 3", got)
	}
}

func TestCustomDescriptors(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Descriptors: []mmu.Descriptor{
				{Section: mmu.SectionData, Base: 0, Size: 2 * mmu.PageSize,
					AppPerms: mmu.Read | mmu.Write, POSPerms: mmu.Read | mmu.Write},
			}},
			{Name: "B"},
		},
	})
	if got := m.Memory().MappedPages("A"); got != 2 {
		t.Errorf("A mapped pages = %d, want 2", got)
	}
}
