package core

import (
	"testing"

	"air/internal/apex"
	"air/internal/ipc"
	"air/internal/tick"
)

func samplingBetween(name string, refresh, latency tick.Ticks) ipc.SamplingConfig {
	return ipc.SamplingConfig{
		Name: name, MaxMessage: 64, Refresh: refresh, Latency: latency,
		Source:       ipc.PortRef{Partition: "A", Port: "s_out"},
		Destinations: []ipc.PortRef{{Partition: "B", Port: "s_in"}},
	}
}

// TestSamplingPortsAcrossPartitions: A publishes attitude-style samples; B
// reads the latest each window with validity.
func TestSamplingPortsAcrossPartitions(t *testing.T) {
	var reads []string
	var validities []apex.Validity
	m := startModule(t, Config{
		System:   twoPartitionSystem(),
		Sampling: []ipc.SamplingConfig{samplingBetween("att", 200, 0)},
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				if rc := sv.CreateSamplingPort("s_out", apex.Source); rc != apex.NoError {
					t.Errorf("create source port = %v", rc)
				}
				sv.CreateProcess(periodicTask("pub", 100, 5), func(sv *Services) {
					seq := byte('0')
					for {
						sv.Compute(5)
						if rc := sv.WriteSamplingMessage("s_out", []byte{'q', seq}); rc != apex.NoError {
							t.Errorf("write = %v", rc)
						}
						seq++
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("pub")
			})},
			{Name: "B", Init: normalInit(func(sv *Services) {
				if rc := sv.CreateSamplingPort("s_in", apex.Destination); rc != apex.NoError {
					t.Errorf("create dest port = %v", rc)
				}
				sv.CreateProcess(periodicTask("sub", 100, 5), func(sv *Services) {
					for {
						sv.Compute(5)
						data, validity, rc := sv.ReadSamplingMessage("s_in")
						if rc == apex.NoError {
							reads = append(reads, string(data))
							validities = append(validities, validity)
						}
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("sub")
			})},
		},
	})
	if err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	if len(reads) < 4 {
		t.Fatalf("reads = %v", reads)
	}
	// B reads within the same MTF as the write: always the latest, valid.
	for i, v := range validities {
		if v != apex.Valid {
			t.Errorf("read %d validity = %v", i, v)
		}
	}
	// Sequence advances.
	if reads[0] == reads[len(reads)-1] {
		t.Errorf("sample did not advance: %v", reads)
	}
}

// TestQueuingPortsAcrossPartitions streams telemetry A→B losslessly.
func TestQueuingPortsAcrossPartitions(t *testing.T) {
	var got []byte
	const total = 20
	m := startModule(t, Config{
		System:  twoPartitionSystem(),
		Queuing: []ipc.QueuingConfig{queueBetween("tm", 4, 0)},
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateQueuingPort("out", apex.Source)
				sv.CreateProcess(aperiodicTask("tx", 5), func(sv *Services) {
					for i := byte(0); i < total; i++ {
						if rc := sv.SendQueuingMessage("out", []byte{i}, tick.Infinity); rc != apex.NoError {
							t.Errorf("send %d = %v", i, rc)
							return
						}
						sv.Compute(1)
					}
					sv.StopSelf()
				})
				sv.StartProcess("tx")
			})},
			{Name: "B", Init: normalInit(func(sv *Services) {
				sv.CreateQueuingPort("in", apex.Destination)
				sv.CreateProcess(aperiodicTask("rx", 5), func(sv *Services) {
					for len(got) < total {
						data, rc := sv.ReceiveQueuingMessage("in", tick.Infinity)
						if rc != apex.NoError {
							t.Errorf("receive = %v", rc)
							return
						}
						got = append(got, data[0])
						sv.Compute(1)
					}
					sv.StopSelf()
				})
				sv.StartProcess("rx")
			})},
		},
	})
	if err := m.Run(3000); err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("received %d/%d messages", len(got), total)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

// TestQueuingPortRemoteLatency: on a bus channel (latency 30) a message sent
// by A in its window arrives for B only after the latency.
func TestQueuingPortRemoteLatency(t *testing.T) {
	var receivedAt tick.Ticks
	m := startModule(t, Config{
		System:  twoPartitionSystem(),
		Queuing: []ipc.QueuingConfig{queueBetween("bus", 4, 30)},
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateQueuingPort("out", apex.Source)
				sv.CreateProcess(aperiodicTask("tx", 5), func(sv *Services) {
					sv.Compute(30) // send at t≈31
					sv.SendQueuingMessage("out", []byte{0xAA}, 0)
					sv.StopSelf()
				})
				sv.StartProcess("tx")
			})},
			{Name: "B", Init: normalInit(func(sv *Services) {
				sv.CreateQueuingPort("in", apex.Destination)
				sv.CreateProcess(aperiodicTask("rx", 5), func(sv *Services) {
					_, rc := sv.ReceiveQueuingMessage("in", tick.Infinity)
					if rc != apex.NoError {
						t.Errorf("receive = %v", rc)
					}
					receivedAt = sv.GetTime()
					sv.StopSelf()
				})
				sv.StartProcess("rx")
			})},
		},
	})
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	// Sent at ~31, latency 30 → deliverable from ~61; B's window is
	// [50,100), so reception happens in (60, 100).
	if receivedAt < 60 || receivedAt >= 100 {
		t.Errorf("received at %d, want within B's first window after latency", receivedAt)
	}
}

func TestPortValidation(t *testing.T) {
	m := startModule(t, Config{
		System:   twoPartitionSystem(),
		Sampling: []ipc.SamplingConfig{samplingBetween("att", 100, 0)},
		Queuing:  []ipc.QueuingConfig{queueBetween("tm", 4, 0)},
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				// Wrong direction for the configured binding.
				if rc := sv.CreateSamplingPort("s_out", apex.Destination); rc != apex.InvalidConfig {
					t.Errorf("wrong direction = %v", rc)
				}
				// Unknown binding.
				if rc := sv.CreateSamplingPort("nope", apex.Source); rc != apex.InvalidConfig {
					t.Errorf("unknown port = %v", rc)
				}
				if rc := sv.CreateSamplingPort("s_out", apex.Source); rc != apex.NoError {
					t.Errorf("create = %v", rc)
				}
				if rc := sv.CreateSamplingPort("s_out", apex.Source); rc != apex.NoAction {
					t.Errorf("dup create = %v", rc)
				}
				// Write validations.
				if rc := sv.WriteSamplingMessage("nope", []byte("x")); rc != apex.InvalidConfig {
					t.Errorf("write unknown = %v", rc)
				}
				if rc := sv.WriteSamplingMessage("s_out", make([]byte, 65)); rc != apex.InvalidParam {
					t.Errorf("oversize = %v", rc)
				}
				// Reading from a source port is a mode error.
				if _, _, rc := sv.ReadSamplingMessage("s_out"); rc != apex.InvalidMode {
					t.Errorf("read source = %v", rc)
				}
				if st, rc := sv.GetSamplingPortStatus("s_out"); rc != apex.NoError || st.MaxMessage != 64 {
					t.Errorf("status = %+v %v", st, rc)
				}
				if _, rc := sv.GetSamplingPortStatus("zz"); rc != apex.InvalidConfig {
					t.Errorf("unknown status = %v", rc)
				}
				// Queuing side.
				if rc := sv.CreateQueuingPort("out", apex.Source); rc != apex.NoError {
					t.Errorf("create queuing = %v", rc)
				}
				if rc := sv.CreateQueuingPort("out", apex.Source); rc != apex.NoAction {
					t.Errorf("dup queuing = %v", rc)
				}
				if rc := sv.CreateQueuingPort("zz", apex.Source); rc != apex.InvalidConfig {
					t.Errorf("unknown queuing = %v", rc)
				}
				if rc := sv.SendQueuingMessage("zz", []byte("x"), 0); rc != apex.InvalidConfig {
					t.Errorf("send unknown = %v", rc)
				}
				if rc := sv.SendQueuingMessage("out", make([]byte, 65), 0); rc != apex.InvalidParam {
					t.Errorf("send oversize = %v", rc)
				}
				if _, rc := sv.ReceiveQueuingMessage("out", 0); rc != apex.InvalidMode {
					t.Errorf("receive on source = %v", rc)
				}
				if st, rc := sv.GetQueuingPortStatus("out"); rc != apex.NoError || st.Depth != 4 {
					t.Errorf("queuing status = %+v %v", st, rc)
				}
				if _, rc := sv.GetQueuingPortStatus("zz"); rc != apex.InvalidConfig {
					t.Errorf("unknown queuing status = %v", rc)
				}
			})},
			{Name: "B", Init: normalInit(func(sv *Services) {
				if rc := sv.CreateSamplingPort("s_in", apex.Destination); rc != apex.NoError {
					t.Errorf("create dest = %v", rc)
				}
				// Read before any write.
				if _, _, rc := sv.ReadSamplingMessage("s_in"); rc != apex.NotAvailable {
					t.Errorf("read empty = %v", rc)
				}
				// Writing to a destination port is a mode error.
				if rc := sv.WriteSamplingMessage("s_in", []byte("x")); rc != apex.InvalidMode {
					t.Errorf("write dest = %v", rc)
				}
			})},
		},
	})
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	// Port creation after initialization is rejected.
	pt, _ := m.Partition("A")
	sv := pt.services(0, nil)
	if rc := sv.CreateSamplingPort("late", apex.Source); rc != apex.InvalidMode {
		t.Errorf("create in normal mode = %v", rc)
	}
	if rc := sv.CreateQueuingPort("late", apex.Source); rc != apex.InvalidMode {
		t.Errorf("create queuing in normal mode = %v", rc)
	}
}

// TestStaleSamplingValidity: B reads a sample older than the refresh period
// and sees INVALID — the staleness indication of Sect. 2.1's refresh
// semantics.
func TestStaleSamplingValidity(t *testing.T) {
	var first, later apex.Validity
	var reads int
	m := startModule(t, Config{
		System:   twoPartitionSystem(),
		Sampling: []ipc.SamplingConfig{samplingBetween("att", 80, 0)},
		Partitions: []PartitionConfig{
			{Name: "A", Init: normalInit(func(sv *Services) {
				sv.CreateSamplingPort("s_out", apex.Source)
				sv.CreateProcess(aperiodicTask("once", 5), func(sv *Services) {
					sv.WriteSamplingMessage("s_out", []byte("only"))
					sv.StopSelf() // writes exactly once, then silence
				})
				sv.StartProcess("once")
			})},
			{Name: "B", Init: normalInit(func(sv *Services) {
				sv.CreateSamplingPort("s_in", apex.Destination)
				sv.CreateProcess(periodicTask("sub", 100, 5), func(sv *Services) {
					for {
						sv.Compute(5)
						_, validity, rc := sv.ReadSamplingMessage("s_in")
						if rc == apex.NoError {
							if reads == 0 {
								first = validity
							}
							later = validity
							reads++
						}
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("sub")
			})},
		},
	})
	if err := m.Run(400); err != nil {
		t.Fatal(err)
	}
	if reads < 2 {
		t.Fatalf("reads = %d", reads)
	}
	if first != apex.Valid {
		t.Errorf("first read validity = %v, want VALID", first)
	}
	if later != apex.Invalid {
		t.Errorf("stale read validity = %v, want INVALID", later)
	}
}
