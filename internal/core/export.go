package core

import (
	"encoding/json"
	"fmt"
	"io"

	"air/internal/model"
	"air/internal/tick"
)

// traceRecord is the JSON shape of an exported trace event.
type traceRecord struct {
	Time      int64  `json:"t"`
	Kind      string `json:"kind"`
	Partition string `json:"partition,omitempty"`
	Process   string `json:"process,omitempty"`
	Detail    string `json:"detail,omitempty"`
	Latency   int64  `json:"latency,omitempty"`
}

// hmRecord is the JSON shape of an exported health-monitoring event.
type hmRecord struct {
	Time      int64  `json:"t"`
	Code      string `json:"code"`
	Level     string `json:"level"`
	Partition string `json:"partition,omitempty"`
	Process   string `json:"process,omitempty"`
	Action    string `json:"action"`
	Message   string `json:"message,omitempty"`
}

// WriteTrace streams the module trace as JSON lines — one event per line —
// for offline analysis tooling (timelines, dashboards, diffing runs).
func (m *Module) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range m.Trace() {
		rec := traceRecord{
			Time:      int64(e.Time),
			Kind:      e.Kind.String(),
			Partition: string(e.Partition),
			Process:   e.Process,
			Detail:    e.Detail,
			Latency:   int64(e.Latency),
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("core: export trace: %w", err)
		}
	}
	return nil
}

// WriteHealthLog streams the health monitor log as JSON lines.
func (m *Module) WriteHealthLog(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range m.health.Events() {
		rec := hmRecord{
			Time:      int64(e.Time),
			Code:      e.Code.String(),
			Level:     e.Level.String(),
			Partition: string(e.Partition),
			Process:   e.Process,
			Action:    e.Action.String(),
			Message:   e.Message,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("core: export health log: %w", err)
		}
	}
	return nil
}

// ReadTrace parses a JSON-lines trace produced by WriteTrace back into
// events (round-trip tooling support). Unknown kinds parse with kind left
// zero; times and strings are preserved.
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var rec traceRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("core: parse trace: %w", err)
		}
		out = append(out, Event{
			Time:      tick.Ticks(rec.Time),
			Kind:      kindFromString(rec.Kind),
			Partition: model.PartitionName(rec.Partition),
			Process:   rec.Process,
			Detail:    rec.Detail,
			Latency:   tick.Ticks(rec.Latency),
		})
	}
	return out, nil
}

func kindFromString(s string) EventKind {
	for k := EvPartitionSwitch; k <= EvMemoryViolation; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}
