package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"air/internal/hm"
	"air/internal/obs"
)

// hmRecord is the JSON shape of an exported health-monitoring event.
type hmRecord struct {
	Time      int64  `json:"t"`
	Code      string `json:"code"`
	Level     string `json:"level"`
	Partition string `json:"partition,omitempty"`
	Process   string `json:"process,omitempty"`
	Action    string `json:"action"`
	Message   string `json:"message,omitempty"`
}

// EncodeTrace streams events as JSON lines in the unified spine record
// format (obs.Record): one event per line, new fields (core, code, level,
// action) omitted when zero so historical trace output is byte-stable.
func EncodeTrace(w io.Writer, events []Event) error {
	if err := obs.EncodeEvents(w, events); err != nil {
		return fmt.Errorf("core: export trace: %w", err)
	}
	return nil
}

// WriteTrace streams the module trace as JSON lines — one event per line —
// for offline analysis tooling (timelines, dashboards, diffing runs).
func (m *Module) WriteTrace(w io.Writer) error {
	return EncodeTrace(w, m.Trace())
}

// EncodeHealthLog streams health-monitoring events as JSON lines.
func EncodeHealthLog(w io.Writer, events []hm.Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		rec := hmRecord{
			Time:      int64(e.Time),
			Code:      e.Code.String(),
			Level:     e.Level.String(),
			Partition: string(e.Partition),
			Process:   e.Process,
			Action:    e.Action.String(),
			Message:   e.Message,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("core: export health log: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: export health log: %w", err)
	}
	return nil
}

// WriteHealthLog streams the health monitor log as JSON lines.
func (m *Module) WriteHealthLog(w io.Writer) error {
	return EncodeHealthLog(w, m.health.Events())
}

// ReadTrace parses a JSON-lines trace produced by WriteTrace back into
// events (round-trip tooling support). Unknown kinds parse with kind left
// zero; times and strings are preserved.
func ReadTrace(r io.Reader) ([]Event, error) {
	events, err := obs.DecodeEvents(r)
	if err != nil {
		return nil, fmt.Errorf("core: parse trace: %w", err)
	}
	return events, nil
}
