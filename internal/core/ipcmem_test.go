package core

import (
	"bytes"
	"errors"
	"testing"

	"air/internal/mmu"
)

// TestSpatialSeparationUnderIPC is experiment F6's containment half: an
// interpartition transfer staged through partition memory — source process
// stores the message in its own space, the PMK copies it memory-to-memory
// into the destination's space (Sect. 2.1), and the destination reads it —
// without ever weakening spatial separation: the source still cannot touch
// the destination's space and vice versa.
func TestSpatialSeparationUnderIPC(t *testing.T) {
	m := startModule(t, Config{
		System:     twoPartitionSystem(),
		Partitions: []PartitionConfig{{Name: "A"}, {Name: "B"}},
	})
	mem := m.Memory()
	const (
		srcVA = mmu.VirtAddr(0x0010_0000) // data section base
		dstVA = mmu.VirtAddr(0x0010_2000)
	)
	msg := []byte("attitude q=(0.98,0.1,0.1,0.05)")

	// Source partition stores the message in its own data section at
	// application privilege.
	if err := mem.WriteIn("A", srcVA, msg, mmu.PrivApp); err != nil {
		t.Fatal(err)
	}
	// PMK-mediated copy into the destination partition's space.
	if err := mem.Copy("A", srcVA, mmu.PrivPOS, "B", dstVA, mmu.PrivPOS, len(msg)); err != nil {
		t.Fatal(err)
	}
	// Destination reads it from its own space.
	got := make([]byte, len(msg))
	if err := mem.ReadIn("B", dstVA, got, mmu.PrivApp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("transfer corrupted: %q", got)
	}

	// Separation still holds in both directions: A's same virtual address
	// in B's range maps to different frames, and neither partition can
	// reach beyond its own descriptors.
	aView := make([]byte, len(msg))
	if err := mem.ReadIn("A", dstVA, aView, mmu.PrivApp); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(aView, msg) {
		t.Fatal("A can observe B's copy through its own mapping")
	}
	var fault *mmu.Fault
	if err := mem.ReadIn("B", 0x0900_0000, got, mmu.PrivApp); !errors.As(err, &fault) {
		t.Fatalf("out-of-space read = %v, want fault", err)
	}
	// A copy whose source the sender has no right to read is refused at the
	// source side (POS privilege lacks execute-only... use an unmapped src).
	if err := mem.Copy("A", 0x0900_0000, mmu.PrivPOS, "B", dstVA, mmu.PrivPOS, 8); !errors.As(err, &fault) {
		t.Fatalf("copy from unmapped source = %v, want fault", err)
	}
	if fault.Partition != "A" {
		t.Errorf("fault attributed to %s, want A (source side)", fault.Partition)
	}
}
