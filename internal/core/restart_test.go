package core

import (
	"testing"

	"air/internal/apex"
	"air/internal/ipc"
	"air/internal/model"
)

// TestWarmRestartIdempotentInit: warm start re-runs the initialization with
// the process table, ports and objects preserved — re-creation calls return
// NoAction and the partition resumes cleanly (the pattern Sect. 4.2's
// ScheduleChangeAction relies on).
func TestWarmRestartIdempotentInit(t *testing.T) {
	var createRCs, portRCs []apex.ReturnCode
	var activations int
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Sampling: []ipc.SamplingConfig{{
			Name: "tlm", MaxMessage: 16, Refresh: 0,
			Source:       ipc.PortRef{Partition: "A", Port: "out"},
			Destinations: []ipc.PortRef{{Partition: "B", Port: "in"}},
		}},
		Partitions: []PartitionConfig{
			{Name: "A", Init: func(sv *Services) {
				portRCs = append(portRCs, sv.CreateSamplingPort("out", apex.Source))
				_, rc := sv.CreateProcess(periodicTask("w", 100, 3), func(sv *Services) {
					for {
						sv.Compute(10)
						activations++
						sv.WriteSamplingMessage("out", []byte("ok"))
						sv.PeriodicWait()
					}
				})
				createRCs = append(createRCs, rc)
				sv.StartProcess("w")
				sv.CreateSemaphore("mutex", 1, 1, apex.FIFO)
				sv.SetPartitionMode(model.ModeNormal)
			}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(250); err != nil {
		t.Fatal(err)
	}
	before := activations
	if before == 0 {
		t.Fatal("no activations before restart")
	}

	// Warm restart from the kernel side.
	pt, _ := m.Partition("A")
	pt.KernelServices().SetPartitionMode(model.ModeNormal) // no-op sanity
	ptRestart(t, pt)

	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	if activations <= before {
		t.Errorf("no progress after warm restart: %d → %d", before, activations)
	}
	if len(createRCs) != 2 || createRCs[0] != apex.NoError || createRCs[1] != apex.NoAction {
		t.Errorf("create RCs across restarts = %v, want [NO_ERROR NO_ACTION]", createRCs)
	}
	if len(portRCs) != 2 || portRCs[1] != apex.NoAction {
		t.Errorf("port RCs across restarts = %v", portRCs)
	}
	if pt.StartCount() != 2 {
		t.Errorf("start count = %d", pt.StartCount())
	}
	if pt.Mode() != model.ModeNormal {
		t.Errorf("mode = %s", pt.Mode())
	}
	// The semaphore survived the warm start.
	if st, rc := pt.KernelServices().GetSemaphoreStatus("mutex"); rc != apex.NoError || st.Max != 1 {
		t.Errorf("semaphore lost on warm start: %+v %v", st, rc)
	}
}

// ptRestart triggers a warm restart through the public recovery machinery.
func ptRestart(t *testing.T, pt *Partition) {
	t.Helper()
	pt.restart(model.ModeWarmStart)
}

// TestColdRestartWipesState: cold start recreates the process table and
// clears objects — init's creations return NoError again.
func TestColdRestartWipesState(t *testing.T) {
	var createRCs []apex.ReturnCode
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: func(sv *Services) {
				_, rc := sv.CreateProcess(periodicTask("w", 100, 3), func(sv *Services) {
					for {
						sv.Compute(10)
						sv.PeriodicWait()
					}
				})
				createRCs = append(createRCs, rc)
				sv.StartProcess("w")
				sv.SetPartitionMode(model.ModeNormal)
			}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(150); err != nil {
		t.Fatal(err)
	}
	pt, _ := m.Partition("A")
	pt.restart(model.ModeColdStart)
	if err := m.Run(150); err != nil {
		t.Fatal(err)
	}
	if len(createRCs) != 2 || createRCs[1] != apex.NoError {
		t.Errorf("cold restart create RCs = %v, want fresh NO_ERROR", createRCs)
	}
	if misses := m.TraceKind(EvDeadlineMiss); len(misses) != 0 {
		t.Errorf("restart caused misses: %v", misses)
	}
}
