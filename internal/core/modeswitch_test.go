package core

import (
	"testing"

	"air/internal/apex"
	"air/internal/hm"
	"air/internal/model"
	"air/internal/tick"
)

// fig8Config builds a runnable module over the paper's Fig. 8 prototype:
// four partitions, two PSTs. P1 is the system partition (it may request
// schedule switches). Each partition runs a periodic mockup process.
func fig8Config(changeActions map[model.PartitionName]model.ScheduleChangeAction) Config {
	sys := model.Fig8System()
	// Attach change actions to chi2's requirements.
	for i := range sys.Schedules[1].Requirements {
		q := &sys.Schedules[1].Requirements[i]
		if a, ok := changeActions[q.Partition]; ok {
			q.ChangeAction = a
		}
	}
	mkInit := func(period, work tick.Ticks) InitFunc {
		return normalInit(func(sv *Services) {
			sv.CreateProcess(model.TaskSpec{
				Name: "task", Period: period, Deadline: period,
				BasePriority: 5, WCET: work, Periodic: true,
			}, func(sv *Services) {
				for {
					sv.Compute(work)
					sv.PeriodicWait()
				}
			})
			sv.StartProcess("task")
		})
	}
	return Config{
		System: sys,
		Partitions: []PartitionConfig{
			{Name: "P1", System: true, Init: mkInit(1300, 150)},
			{Name: "P2", Init: mkInit(650, 80)},
			{Name: "P3", Init: mkInit(650, 80)},
			{Name: "P4", Init: mkInit(1300, 90)},
		},
	}
}

// TestScheduleSwitchNoNewViolations is experiment E4: successive requests to
// change schedule are handled at the end of the current MTF and do not
// introduce deadline violations, because both PSTs comply with the
// partitions' temporal requirements (eq. 23).
func TestScheduleSwitchNoNewViolations(t *testing.T) {
	m := startModule(t, fig8Config(nil))
	// Let one MTF run under chi1.
	if err := m.Run(1300); err != nil {
		t.Fatal(err)
	}
	// Issue successive switch requests from the system partition: to chi2,
	// back to chi1, then to chi2 — the last request wins at the MTF end.
	pt, _ := m.Partition("P1")
	sv := pt.services(0, nil)
	for _, id := range []model.ScheduleID{1, 0, 1} {
		if rc := sv.SetModuleSchedule(id); rc != apex.NoError {
			t.Fatalf("SetModuleSchedule(%d) = %v", id, rc)
		}
	}
	st := sv.GetModuleScheduleStatus()
	if st.CurrentName != "chi1" || st.NextName != "chi2" {
		t.Fatalf("status before boundary = %+v", st)
	}
	// Run to just before the boundary: still chi1.
	if err := m.Run(1300 - (m.Now() % 1300) - 1); err != nil {
		t.Fatal(err)
	}
	if got := m.ScheduleStatus().CurrentName; got != "chi1" {
		t.Fatalf("switched early: %s at t=%d", got, m.Now())
	}
	// Cross the boundary.
	if err := m.Run(1); err != nil {
		t.Fatal(err)
	}
	st = m.ScheduleStatus()
	if st.CurrentName != "chi2" || st.LastSwitch != 2600 {
		t.Fatalf("status after boundary = %+v (t=%d)", st, m.Now())
	}
	// Run several MTFs under chi2, then switch back, accumulating zero
	// deadline violations throughout.
	if err := m.Run(2 * 1300); err != nil {
		t.Fatal(err)
	}
	if rc := sv.SetModuleSchedule(0); rc != apex.NoError {
		t.Fatal("switch back failed")
	}
	if err := m.Run(2 * 1300); err != nil {
		t.Fatal(err)
	}
	if misses := m.TraceKind(EvDeadlineMiss); len(misses) != 0 {
		t.Fatalf("schedule switches introduced deadline violations: %v", misses)
	}
	if got := m.ScheduleStatus().CurrentName; got != "chi1" {
		t.Errorf("final schedule = %s, want chi1", got)
	}
}

// TestScheduleSwitchWithInjectedFault combines E3 and E4: with the faulty
// process active on P1, schedule switches introduce no violations beyond the
// injected one.
func TestScheduleSwitchWithInjectedFault(t *testing.T) {
	cfg := fig8Config(nil)
	// Replace P1's init with the faulty-process variant (never completes,
	// deadline 200 < cycle 1300, restart-on-miss).
	cfg.Partitions[0].Init = normalInit(func(sv *Services) {
		sv.CreateProcess(model.TaskSpec{
			Name: "faulty", Period: 1300, Deadline: 220,
			BasePriority: 5, WCET: 200, Periodic: true,
		}, func(sv *Services) {
			for {
				sv.Compute(1 << 30)
			}
		})
		sv.StartProcess("faulty")
	})
	cfg.Partitions[0].HMProcessTable = hm.Table{
		hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionRestartProcess},
	}
	m := startModule(t, cfg)
	if err := m.Run(1300); err != nil {
		t.Fatal(err)
	}
	pt, _ := m.Partition("P1")
	sv := pt.services(0, nil)
	sv.SetModuleSchedule(1)
	if err := m.Run(4 * 1300); err != nil {
		t.Fatal(err)
	}
	misses := m.TraceKind(EvDeadlineMiss)
	if len(misses) == 0 {
		t.Fatal("injected fault not detected")
	}
	for _, e := range misses {
		if e.Partition != "P1" || e.Process != "faulty" {
			t.Fatalf("violation outside the injected fault: %v", e)
		}
	}
}

// TestScheduleChangeActions verifies Sect. 4.2: partitions restart according
// to their per-schedule ScheduleChangeAction the first time they are
// dispatched after the switch — and only then.
func TestScheduleChangeActions(t *testing.T) {
	m := startModule(t, fig8Config(map[model.PartitionName]model.ScheduleChangeAction{
		"P2": model.ActionColdStart,
		"P3": model.ActionWarmStart,
		"P4": model.ActionSkip,
	}))
	pt1, _ := m.Partition("P1")
	sv := pt1.services(0, nil)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if rc := sv.SetModuleSchedule(1); rc != apex.NoError {
		t.Fatal("switch request failed")
	}
	// Run past the boundary (t=1300) and through the first windows of the
	// new schedule (P4@1500, P3@1600, P2@1700 under chi2).
	if err := m.Run(1900); err != nil {
		t.Fatal(err)
	}
	counts := map[model.PartitionName]int{}
	for _, name := range m.Partitions() {
		pt, _ := m.Partition(name)
		counts[name] = pt.StartCount()
	}
	if counts["P1"] != 1 || counts["P4"] != 1 {
		t.Errorf("P1/P4 restarted: %v (actions SKIP)", counts)
	}
	if counts["P2"] != 2 {
		t.Errorf("P2 start count = %d, want 2 (cold start action)", counts["P2"])
	}
	if counts["P3"] != 2 {
		t.Errorf("P3 start count = %d, want 2 (warm start action)", counts["P3"])
	}
	// Restart events were traced at the partitions' first dispatch under
	// chi2 (P4 at 1500 has none; P3 at 1400; P2 at 1700... under chi2:
	// P1@0, P4@200, P3@300, P2@400 relative to 1300).
	restarts := m.TraceKind(EvPartitionRestart)
	if len(restarts) != 2 {
		t.Fatalf("restart events = %v", restarts)
	}
	if restarts[0].Partition != "P3" || restarts[0].Time != 1600 {
		t.Errorf("first restart = %v, want P3 at 1600", restarts[0])
	}
	if restarts[1].Partition != "P2" || restarts[1].Time != 1700 {
		t.Errorf("second restart = %v, want P2 at 1700", restarts[1])
	}
}

// TestUnauthorizedScheduleSwitch: only system partitions may invoke
// SET_MODULE_SCHEDULE (Sect. 4.2 "must be invoked by an authorized
// partition").
func TestUnauthorizedScheduleSwitch(t *testing.T) {
	m := startModule(t, fig8Config(nil))
	pt2, _ := m.Partition("P2")
	sv := pt2.services(0, nil)
	if rc := sv.SetModuleSchedule(1); rc != apex.InvalidConfig {
		t.Fatalf("unauthorized switch rc = %v, want INVALID_CONFIG", rc)
	}
	if st := m.ScheduleStatus(); st.NextName != "chi1" {
		t.Errorf("unauthorized request took effect: %+v", st)
	}
	// Unknown schedule id from the authorized partition.
	pt1, _ := m.Partition("P1")
	sv1 := pt1.services(0, nil)
	if rc := sv1.SetModuleSchedule(7); rc != apex.InvalidParam {
		t.Errorf("unknown schedule rc = %v", rc)
	}
	if rc := sv1.SetModuleScheduleByName("chi2"); rc != apex.NoError {
		t.Errorf("by-name switch rc = %v", rc)
	}
	if rc := sv1.SetModuleScheduleByName("nope"); rc != apex.InvalidParam {
		t.Errorf("unknown name rc = %v", rc)
	}
}
