package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"air/internal/hm"
)

func TestWriteTraceJSONL(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120),
				HMProcessTable: hm.Table{
					hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionIgnore},
				}},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(m.Trace()) {
		t.Fatalf("exported %d lines for %d events", len(lines), len(m.Trace()))
	}
	// Every line is standalone valid JSON with the required keys.
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if _, ok := rec["t"]; !ok {
			t.Fatalf("line missing time: %q", line)
		}
		if _, ok := rec["kind"]; !ok {
			t.Fatalf("line missing kind: %q", line)
		}
	}
	// Round trip.
	parsed, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Trace()
	if len(parsed) != len(orig) {
		t.Fatalf("round trip %d events, want %d", len(parsed), len(orig))
	}
	for i := range orig {
		if parsed[i] != orig[i] {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, parsed[i], orig[i])
		}
	}
}

func TestWriteHealthLogJSONL(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: faultyPartitionInit(100, 120)},
			{Name: "B", Init: normalInit(nil)},
		},
	})
	if err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteHealthLog(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no health events exported")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["code"] != "DEADLINE_MISSED" || rec["partition"] != "A" {
		t.Errorf("first record = %v", rec)
	}
}

func TestReadTraceMalformed(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"t": 1, "kind"`)); err == nil {
		t.Error("malformed trace accepted")
	}
	events, err := ReadTrace(strings.NewReader(`{"t":5,"kind":"BOGUS_KIND"}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != 0 {
		t.Errorf("unknown kind handling = %+v", events)
	}
}
