package core

import (
	"errors"
	"testing"

	"air/internal/apex"
	"air/internal/model"
	"air/internal/pos"
	"air/internal/tick"
)

// TestTimedWait: the process sleeps for at least the requested delay.
func TestTimedWait(t *testing.T) {
	var woke []tick.Ticks
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(aperiodicTask("sleeper", 1), func(sv *Services) {
			sv.Compute(2)
			before := sv.GetTime()
			if rc := sv.TimedWait(20); rc != apex.NoError {
				t.Errorf("TimedWait = %v", rc)
			}
			woke = append(woke, sv.GetTime()-before)
			// Zero delay yields the rest of the tick but resumes.
			if rc := sv.TimedWait(0); rc != apex.NoError {
				t.Errorf("TimedWait(0) = %v", rc)
			}
			// Invalid delays.
			if rc := sv.TimedWait(-1); rc != apex.InvalidParam {
				t.Errorf("TimedWait(-1) = %v", rc)
			}
			if rc := sv.TimedWait(tick.Infinity); rc != apex.InvalidParam {
				t.Errorf("TimedWait(∞) = %v", rc)
			}
			sv.StopSelf()
		})
		sv.StartProcess("sleeper")
	})))
	if err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 1 || woke[0] < 20 {
		t.Errorf("slept %v, want ≥ 20", woke)
	}
}

func TestSuspendResumeAcrossProcesses(t *testing.T) {
	var resumedAt tick.Ticks
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(aperiodicTask("worker", 5), func(sv *Services) {
			sv.Compute(1)
			if rc := sv.SuspendSelf(); rc != apex.NoError {
				t.Errorf("SuspendSelf = %v", rc)
			}
			resumedAt = sv.GetTime()
			sv.StopSelf()
		})
		sv.CreateProcess(aperiodicTask("controller", 7), func(sv *Services) {
			sv.Compute(10)
			if rc := sv.ResumeProcess("worker"); rc != apex.NoError {
				t.Errorf("Resume = %v", rc)
			}
			sv.StopSelf()
		})
		sv.StartProcess("worker")
		sv.StartProcess("controller")
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if resumedAt < 11 {
		t.Errorf("worker resumed at %d, want after controller's compute", resumedAt)
	}
}

func TestSuspendOtherProcess(t *testing.T) {
	var loCount int
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(aperiodicTask("lo", 9), func(sv *Services) {
			for {
				sv.Compute(1)
				loCount++
			}
		})
		sv.CreateProcess(aperiodicTask("boss", 1), func(sv *Services) {
			sv.Compute(5)
			if rc := sv.SuspendProcess("lo"); rc != apex.NoError {
				t.Errorf("Suspend = %v", rc)
			}
			if rc := sv.SuspendProcess("nope"); rc != apex.InvalidParam {
				t.Errorf("Suspend unknown = %v", rc)
			}
			sv.StopSelf()
		})
		sv.StartProcess("lo")
		sv.StartProcess("boss")
	})))
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	// lo ran only before the suspension: boss computed 5, so lo got at most
	// the window remainder of the first ticks — then froze.
	if loCount > 50 {
		t.Errorf("suspended process kept computing: %d", loCount)
	}
	pt, _ := m.Partition("A")
	proc, _ := pt.Kernel().Lookup("lo")
	if proc.State != model.StateWaiting || !proc.Suspended {
		t.Errorf("lo state = %s suspended=%v", proc.State, proc.Suspended)
	}
}

func TestSetPriorityService(t *testing.T) {
	var order []string
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(aperiodicTask("a", 5), func(sv *Services) {
			sv.Compute(10)
			order = append(order, "a")
			sv.StopSelf()
		})
		sv.CreateProcess(aperiodicTask("b", 6), func(sv *Services) {
			sv.Compute(10)
			order = append(order, "b")
			sv.StopSelf()
		})
		sv.StartProcess("a")
		sv.StartProcess("b")
		// Boost b above a before normal mode begins.
		if rc := sv.SetPriority("b", 1); rc != apex.NoError {
			t.Errorf("SetPriority = %v", rc)
		}
		if rc := sv.SetPriority("zz", 1); rc != apex.InvalidParam {
			t.Errorf("SetPriority unknown = %v", rc)
		}
	})))
	if err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "b" {
		t.Errorf("completion order = %v, want b first", order)
	}
}

func TestProcessIntrospectionServices(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(periodicTask("p", 100, 4), func(sv *Services) {
			id, rc := sv.GetMyID()
			if rc != apex.NoError || id == pos.InvalidProcess {
				t.Errorf("GetMyID = %v %v", id, rc)
			}
			if sv.MyName() != "p" {
				t.Errorf("MyName = %q", sv.MyName())
			}
			st, rc := sv.GetProcessStatus("p")
			if rc != apex.NoError || st.State != model.StateRunning ||
				st.BasePriority != 4 || !st.Periodic {
				t.Errorf("own status = %+v %v", st, rc)
			}
			sv.StopSelf()
		})
		// Kernel-context introspection.
		if _, rc := sv.GetMyID(); rc != apex.InvalidMode {
			t.Errorf("kernel GetMyID rc = %v", rc)
		}
		if id, rc := sv.GetProcessID("p"); rc != apex.NoError || id == pos.InvalidProcess {
			t.Errorf("GetProcessID = %v %v", id, rc)
		}
		if _, rc := sv.GetProcessID("zz"); rc != apex.InvalidConfig {
			t.Errorf("GetProcessID unknown = %v", rc)
		}
		st, rc := sv.GetProcessStatus("p")
		if rc != apex.NoError || st.State != model.StateDormant {
			t.Errorf("dormant status = %+v %v", st, rc)
		}
		if _, rc := sv.GetProcessStatus("zz"); rc != apex.InvalidConfig {
			t.Errorf("status unknown = %v", rc)
		}
		sv.StartProcess("p")
	})))
	if err := m.Run(50); err != nil {
		t.Fatal(err)
	}
}

func TestCreateProcessRules(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		spec := periodicTask("x", 100, 4)
		if _, rc := sv.CreateProcess(spec, nil); rc != apex.NoError {
			t.Errorf("create = %v", rc)
		}
		// Identical re-creation (warm start idempotency): NoAction.
		if _, rc := sv.CreateProcess(spec, nil); rc != apex.NoAction {
			t.Errorf("identical recreate = %v", rc)
		}
		// Same name, different attributes: InvalidConfig.
		spec2 := spec
		spec2.WCET = 2
		if _, rc := sv.CreateProcess(spec2, nil); rc != apex.InvalidConfig {
			t.Errorf("conflicting recreate = %v", rc)
		}
		// Invalid spec: InvalidParam.
		if _, rc := sv.CreateProcess(model.TaskSpec{Name: "bad"}, nil); rc != apex.InvalidParam {
			t.Errorf("invalid spec = %v", rc)
		}
	})))
	// Creation after initialization: InvalidMode.
	pt, _ := m.Partition("A")
	sv := pt.KernelServices()
	if _, rc := sv.CreateProcess(periodicTask("late", 100, 4), nil); rc != apex.InvalidMode {
		t.Errorf("create in normal mode = %v", rc)
	}
	// Start/stop services and their edges.
	if rc := sv.StartProcess("zz"); rc != apex.InvalidParam {
		t.Errorf("start unknown = %v", rc)
	}
	if rc := sv.StartProcess("x"); rc != apex.NoError {
		t.Errorf("start = %v", rc)
	}
	if rc := sv.StartProcess("x"); rc != apex.NoAction {
		t.Errorf("double start = %v", rc)
	}
	if rc := sv.StopProcess("zz"); rc != apex.InvalidParam {
		t.Errorf("stop unknown = %v", rc)
	}
	if rc := sv.StopProcess("x"); rc != apex.NoError {
		t.Errorf("stop = %v", rc)
	}
	if rc := sv.StopProcess("x"); rc != apex.NoAction {
		t.Errorf("stop dormant = %v", rc)
	}
	if rc := sv.DelayedStartProcess("x", -1); rc != apex.InvalidParam {
		t.Errorf("delayed start negative = %v", rc)
	}
	if rc := sv.DelayedStartProcess("x", 10); rc != apex.NoError {
		t.Errorf("delayed start = %v", rc)
	}
	if rc := sv.DelayedStartProcess("zz", 10); rc != apex.InvalidParam {
		t.Errorf("delayed start unknown = %v", rc)
	}
}

func TestReplenishService(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(model.TaskSpec{
			Name: "r", Period: 100, Deadline: 40,
			BasePriority: 1, WCET: 30, Periodic: true,
		}, func(sv *Services) {
			for {
				sv.Compute(30)
				// Takes 30 of capacity 40; replenish before the edge so a
				// further 30 fits without missing.
				if rc := sv.Replenish(50); rc != apex.NoError {
					t.Errorf("Replenish = %v", rc)
				}
				sv.Compute(15)
				if rc := sv.Replenish(0); rc != apex.InvalidParam {
					t.Errorf("Replenish(0) = %v", rc)
				}
				sv.PeriodicWait()
			}
		})
		sv.StartProcess("r")
	})))
	if err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	if misses := m.TraceKind(EvDeadlineMiss); len(misses) != 0 {
		t.Errorf("replenished process missed: %v", misses)
	}
}

func TestPreemptionLockService(t *testing.T) {
	var order []string
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(aperiodicTask("lo", 9), func(sv *Services) {
			if lvl := sv.LockPreemption(); lvl != 1 {
				t.Errorf("lock level = %d", lvl)
			}
			sv.Compute(10) // hi becomes ready meanwhile but cannot preempt
			order = append(order, "lo-critical-done")
			if lvl := sv.UnlockPreemption(); lvl != 0 {
				t.Errorf("unlock level = %d", lvl)
			}
			sv.Compute(10)
			order = append(order, "lo-done")
			sv.StopSelf()
		})
		sv.CreateProcess(aperiodicTask("hi", 1), func(sv *Services) {
			order = append(order, "hi-done")
			sv.StopSelf()
		})
		sv.StartProcess("lo")
		sv.DelayedStartProcess("hi", 3)
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []string{"lo-critical-done", "hi-done", "lo-done"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParavirtualizedClockViaServices(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Policy: pos.PolicyRoundRobin, Init: normalInit(func(sv *Services) {
				// A "Linux" guest trying to take over the clock.
				if err := sv.DisableClockInterrupts(); !errors.Is(err, pos.ErrParavirtualized) {
					t.Errorf("DisableClockInterrupts = %v", err)
				}
			})},
			{Name: "B"},
		},
	})
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinPartitionIntegration(t *testing.T) {
	// A non-real-time (round-robin) partition shares its window fairly
	// among equal processes while the RT partition is unaffected.
	counts := map[string]int{}
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Policy: pos.PolicyRoundRobin, Init: normalInit(func(sv *Services) {
				for _, name := range []string{"sh1", "sh2", "sh3"} {
					n := name
					sv.CreateProcess(model.TaskSpec{
						Name: n, Deadline: tick.Infinity, BasePriority: 5, WCET: 1,
					}, func(sv *Services) {
						for {
							sv.Compute(1)
							counts[n]++
						}
					})
					sv.StartProcess(n)
				}
			})},
			{Name: "B", Init: normalInit(func(sv *Services) {
				sv.CreateProcess(periodicTask("rt", 100, 1), func(sv *Services) {
					for {
						sv.Compute(10)
						counts["rt"]++
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("rt")
			})},
		},
	})
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Fair sharing: 500 A-ticks over 3 processes ≈ 166/167 each.
	for _, n := range []string{"sh1", "sh2", "sh3"} {
		if counts[n] < 160 || counts[n] > 172 {
			t.Errorf("%s ran %d ticks, want ≈166", n, counts[n])
		}
	}
	if counts["rt"] != 10 {
		t.Errorf("rt activations = %d, want 10", counts["rt"])
	}
	if misses := m.TraceKind(EvDeadlineMiss); len(misses) != 0 {
		t.Errorf("misses: %v", misses)
	}
}

func TestGetPartitionStatusService(t *testing.T) {
	m := startModule(t, Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", System: true},
			{Name: "B"},
		},
	})
	pt, _ := m.Partition("A")
	st := pt.KernelServices().GetPartitionStatus()
	if st.Name != "A" || !st.System || st.Mode != model.ModeNormal || st.StartCount != 1 {
		t.Errorf("status = %+v", st)
	}
	ptB, _ := m.Partition("B")
	if ptB.KernelServices().GetPartitionStatus().System {
		t.Error("B must not be a system partition")
	}
	// SET_PARTITION_MODE edge cases from kernel context.
	svB := ptB.KernelServices()
	if rc := svB.SetPartitionMode(model.ModeNormal); rc != apex.NoAction {
		t.Errorf("re-normal = %v", rc)
	}
	if rc := svB.SetPartitionMode(model.ModeColdStart); rc != apex.InvalidMode {
		t.Errorf("kernel-context cold start = %v", rc)
	}
	if rc := svB.SetPartitionMode(model.OperatingMode(99)); rc != apex.InvalidParam {
		t.Errorf("bogus mode = %v", rc)
	}
	if rc := svB.SetPartitionMode(model.ModeIdle); rc != apex.NoError {
		t.Errorf("idle = %v", rc)
	}
	if ptB.Mode() != model.ModeIdle {
		t.Error("B not idle")
	}
}

func TestMemReadService(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(aperiodicTask("io", 1), func(sv *Services) {
			sv.Compute(1)
			payload := []byte("stored state vector")
			if rc := sv.MemWrite(0x0010_0000, payload); rc != apex.NoError {
				t.Errorf("MemWrite = %v", rc)
			}
			buf := make([]byte, len(payload))
			if rc := sv.MemRead(0x0010_0000, buf); rc != apex.NoError {
				t.Errorf("MemRead = %v", rc)
			}
			if string(buf) != string(payload) {
				t.Errorf("round trip = %q", buf)
			}
			sv.StopSelf()
		})
		sv.StartProcess("io")
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestStopOtherProcessFromProcess(t *testing.T) {
	var victimTicks int
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateProcess(aperiodicTask("victim", 9), func(sv *Services) {
			for {
				sv.Compute(1)
				victimTicks++
			}
		})
		sv.CreateProcess(aperiodicTask("killer", 1), func(sv *Services) {
			sv.Compute(5)
			if rc := sv.StopProcess("victim"); rc != apex.NoError {
				t.Errorf("StopProcess = %v", rc)
			}
			sv.StopSelf()
		})
		sv.StartProcess("victim")
		sv.StartProcess("killer")
	})))
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	if victimTicks != 0 {
		// killer has higher priority: victim never ran before the kill.
		t.Errorf("victim ran %d ticks", victimTicks)
	}
	pt, _ := m.Partition("A")
	proc, _ := pt.Kernel().Lookup("victim")
	if proc.State != model.StateDormant {
		t.Errorf("victim state = %s", proc.State)
	}
}
