package core

import (
	"air/internal/apex"
	"air/internal/ipc"
	"air/internal/pos"
)

// waiter is one blocked process queued on an APEX object.
type waiter struct {
	pid  pos.ProcessID
	prio int
	seq  uint64
	// handoff delivers the awaited resource directly to the waiter
	// (message for buffers/blackboards, token for semaphores), guaranteeing
	// the queuing discipline is honoured regardless of who runs next.
	handoff []byte
	granted bool
}

// waitQueue orders blocked processes by the object's queuing discipline:
// FIFO (arrival order) or priority order (higher priority — lower numeric
// value — first, FIFO among equals).
type waitQueue struct {
	discipline apex.QueuingDiscipline
	seq        uint64
	items      []*waiter
}

func newWaitQueue(d apex.QueuingDiscipline) waitQueue {
	if d == 0 {
		d = apex.FIFO
	}
	return waitQueue{discipline: d}
}

func (q *waitQueue) push(pid pos.ProcessID, prio int) *waiter {
	q.seq++
	w := &waiter{pid: pid, prio: prio, seq: q.seq}
	q.items = append(q.items, w)
	return w
}

// pop removes and returns the next waiter per the discipline.
func (q *waitQueue) pop() (*waiter, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	best := 0
	if q.discipline == apex.PriorityOrder {
		for i := 1; i < len(q.items); i++ {
			cur, b := q.items[i], q.items[best]
			if cur.prio < b.prio || (cur.prio == b.prio && cur.seq < b.seq) {
				best = i
			}
		}
	}
	w := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return w, true
}

// remove drops a specific waiter (timeout path).
func (q *waitQueue) remove(w *waiter) {
	for i, cur := range q.items {
		if cur == w {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return
		}
	}
}

func (q *waitQueue) len() int { return len(q.items) }

func (q *waitQueue) clear() { q.items = nil }

// buffer is the ARINC 653 intra-partition buffer: a bounded FIFO of messages
// with blocking send (when full) and receive (when empty).
type buffer struct {
	name       string
	maxMessage int
	depth      int
	queue      [][]byte
	senders    waitQueue // blocked senders, each carrying its message
	receivers  waitQueue // blocked receivers
}

// blackboard is the ARINC 653 blackboard: a single displayed message; reads
// block until a message is displayed.
type blackboard struct {
	name       string
	maxMessage int
	message    []byte
	displayed  bool
	readers    waitQueue
}

// semaphore is the ARINC 653 counting semaphore.
type semaphore struct {
	name    string
	value   int
	max     int
	waiters waitQueue
}

// eventObj is the ARINC 653 event: up/down state with broadcast wake-up.
type eventObj struct {
	name    string
	up      bool
	waiters waitQueue
}

// samplingPort binds a partition-local port name to a sampling channel.
type samplingPort struct {
	name         string
	direction    apex.Direction
	channel      *ipc.SamplingChannel
	lastValidity apex.Validity
}

// queuingPort binds a partition-local port name to a queuing channel.
type queuingPort struct {
	name      string
	direction apex.Direction
	channel   *ipc.QueuingChannel
}
