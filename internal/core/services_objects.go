package core

import (
	"air/internal/apex"
	"air/internal/model"
	"air/internal/pos"
	"air/internal/tick"
)

// Intra-partition communication services: buffers, blackboards, semaphores
// and events (ARINC 653 Part 1). Creation is restricted to partition
// initialization; blocking operations park the calling process on the
// object's wait queue under the configured queuing discipline, with direct
// handoff so the discipline is honoured deterministically.

func (sv *Services) creationAllowed() bool {
	return sv.pt.mode != model.ModeNormal
}

// currentPrio returns the caller's current priority for priority-ordered
// wait queues (0 in kernel context, which never blocks anyway).
func (sv *Services) currentPrio() int {
	if p := sv.myProc(); p != nil {
		return int(p.CurrentPriority)
	}
	return 0
}

// parkOn blocks the calling process on a wait queue until granted or timed
// out. It returns true when the waiter was granted the resource.
func (sv *Services) parkOn(q *waitQueue, kind pos.WaitKind, timeout tick.Ticks) (*waiter, bool) {
	w := q.push(sv.pid, sv.currentPrio())
	_ = sv.pt.kernel.Block(sv.pid, kind, sv.wakeDeadline(timeout))
	sv.blockSelf()
	if w.granted {
		return w, true
	}
	q.remove(w)
	return w, false
}

// grantWaiter marks a waiter granted and makes its process ready.
func (pt *Partition) grantWaiter(w *waiter) {
	w.granted = true
	_ = pt.kernel.Wake(w.pid)
}

// --- buffers -----------------------------------------------------------------

// CreateBuffer implements CREATE_BUFFER.
func (sv *Services) CreateBuffer(name string, maxMessage, depth int, d apex.QueuingDiscipline) apex.ReturnCode {
	if !sv.creationAllowed() {
		return apex.InvalidMode
	}
	if name == "" || maxMessage <= 0 || depth <= 0 {
		return apex.InvalidParam
	}
	if _, exists := sv.pt.buffers[name]; exists {
		return apex.NoAction
	}
	sv.pt.buffers[name] = &buffer{
		name: name, maxMessage: maxMessage, depth: depth,
		senders:   newWaitQueue(d),
		receivers: newWaitQueue(d),
	}
	return apex.NoError
}

// SendBuffer implements SEND_BUFFER with a timeout: 0 = non-blocking,
// tick.Infinity = wait forever.
func (sv *Services) SendBuffer(name string, data []byte, timeout tick.Ticks) apex.ReturnCode {
	b, ok := sv.pt.buffers[name]
	if !ok {
		return apex.InvalidConfig
	}
	if len(data) == 0 || len(data) > b.maxMessage {
		return apex.InvalidParam
	}
	msg := append([]byte(nil), data...)
	// A waiting receiver takes the message directly.
	if w, ok := b.receivers.pop(); ok {
		w.handoff = msg
		sv.pt.grantWaiter(w)
		return apex.NoError
	}
	if len(b.queue) < b.depth {
		b.queue = append(b.queue, msg)
		return apex.NoError
	}
	if timeout == 0 {
		return apex.NotAvailable
	}
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	w := b.senders.push(sv.pid, sv.currentPrio())
	w.handoff = msg // the message travels with the blocked sender
	_ = sv.pt.kernel.Block(sv.pid, pos.WaitBuffer, sv.wakeDeadline(timeout))
	sv.blockSelf()
	if w.granted {
		return apex.NoError
	}
	b.senders.remove(w)
	return apex.TimedOut
}

// ReceiveBuffer implements RECEIVE_BUFFER with a timeout.
func (sv *Services) ReceiveBuffer(name string, timeout tick.Ticks) ([]byte, apex.ReturnCode) {
	b, ok := sv.pt.buffers[name]
	if !ok {
		return nil, apex.InvalidConfig
	}
	if len(b.queue) > 0 {
		msg := b.queue[0]
		b.queue = b.queue[1:]
		// Admit one blocked sender into the freed slot.
		if w, ok := b.senders.pop(); ok {
			b.queue = append(b.queue, w.handoff)
			sv.pt.grantWaiter(w)
		}
		return msg, apex.NoError
	}
	if timeout == 0 {
		return nil, apex.NotAvailable
	}
	if !sv.inProcess() {
		return nil, apex.InvalidMode
	}
	w, granted := sv.parkOn(&b.receivers, pos.WaitBuffer, timeout)
	if !granted {
		return nil, apex.TimedOut
	}
	return w.handoff, apex.NoError
}

// GetBufferStatus implements GET_BUFFER_STATUS.
func (sv *Services) GetBufferStatus(name string) (apex.BufferStatus, apex.ReturnCode) {
	b, ok := sv.pt.buffers[name]
	if !ok {
		return apex.BufferStatus{}, apex.InvalidConfig
	}
	return apex.BufferStatus{
		Name: b.name, MaxMessage: b.maxMessage, Depth: b.depth,
		QueuedMessages: len(b.queue),
		WaitingSenders: b.senders.len(), WaitingReceiver: b.receivers.len(),
	}, apex.NoError
}

// --- blackboards ----------------------------------------------------------------

// CreateBlackboard implements CREATE_BLACKBOARD.
func (sv *Services) CreateBlackboard(name string, maxMessage int) apex.ReturnCode {
	if !sv.creationAllowed() {
		return apex.InvalidMode
	}
	if name == "" || maxMessage <= 0 {
		return apex.InvalidParam
	}
	if _, exists := sv.pt.blackboards[name]; exists {
		return apex.NoAction
	}
	sv.pt.blackboards[name] = &blackboard{
		name: name, maxMessage: maxMessage, readers: newWaitQueue(apex.FIFO),
	}
	return apex.NoError
}

// DisplayBlackboard implements DISPLAY_BLACKBOARD: the message is displayed
// and every waiting reader released with it.
func (sv *Services) DisplayBlackboard(name string, data []byte) apex.ReturnCode {
	bb, ok := sv.pt.blackboards[name]
	if !ok {
		return apex.InvalidConfig
	}
	if len(data) == 0 || len(data) > bb.maxMessage {
		return apex.InvalidParam
	}
	bb.message = append([]byte(nil), data...)
	bb.displayed = true
	for {
		w, ok := bb.readers.pop()
		if !ok {
			break
		}
		w.handoff = append([]byte(nil), bb.message...)
		sv.pt.grantWaiter(w)
	}
	return apex.NoError
}

// ReadBlackboard implements READ_BLACKBOARD with a timeout.
func (sv *Services) ReadBlackboard(name string, timeout tick.Ticks) ([]byte, apex.ReturnCode) {
	bb, ok := sv.pt.blackboards[name]
	if !ok {
		return nil, apex.InvalidConfig
	}
	if bb.displayed {
		return append([]byte(nil), bb.message...), apex.NoError
	}
	if timeout == 0 {
		return nil, apex.NotAvailable
	}
	if !sv.inProcess() {
		return nil, apex.InvalidMode
	}
	w, granted := sv.parkOn(&bb.readers, pos.WaitBlackboard, timeout)
	if !granted {
		return nil, apex.TimedOut
	}
	return w.handoff, apex.NoError
}

// ClearBlackboard implements CLEAR_BLACKBOARD.
func (sv *Services) ClearBlackboard(name string) apex.ReturnCode {
	bb, ok := sv.pt.blackboards[name]
	if !ok {
		return apex.InvalidConfig
	}
	bb.displayed = false
	bb.message = nil
	return apex.NoError
}

// GetBlackboardStatus implements GET_BLACKBOARD_STATUS.
func (sv *Services) GetBlackboardStatus(name string) (apex.BlackboardStatus, apex.ReturnCode) {
	bb, ok := sv.pt.blackboards[name]
	if !ok {
		return apex.BlackboardStatus{}, apex.InvalidConfig
	}
	return apex.BlackboardStatus{
		Name: bb.name, MaxMessage: bb.maxMessage,
		Displayed: bb.displayed, Waiting: bb.readers.len(),
	}, apex.NoError
}

// --- semaphores ------------------------------------------------------------------

// CreateSemaphore implements CREATE_SEMAPHORE.
func (sv *Services) CreateSemaphore(name string, initial, maxValue int, d apex.QueuingDiscipline) apex.ReturnCode {
	if !sv.creationAllowed() {
		return apex.InvalidMode
	}
	if name == "" || maxValue <= 0 || initial < 0 || initial > maxValue {
		return apex.InvalidParam
	}
	if _, exists := sv.pt.semaphores[name]; exists {
		return apex.NoAction
	}
	sv.pt.semaphores[name] = &semaphore{
		name: name, value: initial, max: maxValue, waiters: newWaitQueue(d),
	}
	return apex.NoError
}

// WaitSemaphore implements WAIT_SEMAPHORE with a timeout.
func (sv *Services) WaitSemaphore(name string, timeout tick.Ticks) apex.ReturnCode {
	s, ok := sv.pt.semaphores[name]
	if !ok {
		return apex.InvalidConfig
	}
	if s.value > 0 {
		s.value--
		return apex.NoError
	}
	if timeout == 0 {
		return apex.NotAvailable
	}
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	_, granted := sv.parkOn(&s.waiters, pos.WaitSemaphore, timeout)
	if !granted {
		return apex.TimedOut
	}
	return apex.NoError
}

// SignalSemaphore implements SIGNAL_SEMAPHORE: a blocked waiter receives the
// token directly; otherwise the value increments up to the maximum.
func (sv *Services) SignalSemaphore(name string) apex.ReturnCode {
	s, ok := sv.pt.semaphores[name]
	if !ok {
		return apex.InvalidConfig
	}
	if w, ok := s.waiters.pop(); ok {
		sv.pt.grantWaiter(w)
		return apex.NoError
	}
	if s.value >= s.max {
		return apex.NoAction
	}
	s.value++
	return apex.NoError
}

// GetSemaphoreStatus implements GET_SEMAPHORE_STATUS.
func (sv *Services) GetSemaphoreStatus(name string) (apex.SemaphoreStatus, apex.ReturnCode) {
	s, ok := sv.pt.semaphores[name]
	if !ok {
		return apex.SemaphoreStatus{}, apex.InvalidConfig
	}
	return apex.SemaphoreStatus{
		Name: s.name, Value: s.value, Max: s.max, Waiting: s.waiters.len(),
	}, apex.NoError
}

// --- events ------------------------------------------------------------------------

// CreateEvent implements CREATE_EVENT.
func (sv *Services) CreateEvent(name string) apex.ReturnCode {
	if !sv.creationAllowed() {
		return apex.InvalidMode
	}
	if name == "" {
		return apex.InvalidParam
	}
	if _, exists := sv.pt.events[name]; exists {
		return apex.NoAction
	}
	sv.pt.events[name] = &eventObj{name: name, waiters: newWaitQueue(apex.FIFO)}
	return apex.NoError
}

// SetEvent implements SET_EVENT: the event goes up and all waiters release.
func (sv *Services) SetEvent(name string) apex.ReturnCode {
	e, ok := sv.pt.events[name]
	if !ok {
		return apex.InvalidConfig
	}
	e.up = true
	for {
		w, ok := e.waiters.pop()
		if !ok {
			break
		}
		sv.pt.grantWaiter(w)
	}
	return apex.NoError
}

// ResetEvent implements RESET_EVENT.
func (sv *Services) ResetEvent(name string) apex.ReturnCode {
	e, ok := sv.pt.events[name]
	if !ok {
		return apex.InvalidConfig
	}
	e.up = false
	return apex.NoError
}

// WaitEvent implements WAIT_EVENT with a timeout.
func (sv *Services) WaitEvent(name string, timeout tick.Ticks) apex.ReturnCode {
	e, ok := sv.pt.events[name]
	if !ok {
		return apex.InvalidConfig
	}
	if e.up {
		return apex.NoError
	}
	if timeout == 0 {
		return apex.NotAvailable
	}
	if !sv.inProcess() {
		return apex.InvalidMode
	}
	_, granted := sv.parkOn(&e.waiters, pos.WaitEvent, timeout)
	if !granted {
		return apex.TimedOut
	}
	return apex.NoError
}

// GetEventStatus implements GET_EVENT_STATUS.
func (sv *Services) GetEventStatus(name string) (apex.EventStatus, apex.ReturnCode) {
	e, ok := sv.pt.events[name]
	if !ok {
		return apex.EventStatus{}, apex.InvalidConfig
	}
	return apex.EventStatus{Name: e.name, Up: e.up, Waiting: e.waiters.len()}, apex.NoError
}
