package core

import (
	"testing"

	"air/internal/apex"
	"air/internal/tick"
)

// singlePartitionConfig builds a one-window system for intra-partition
// object tests (B exists but idles).
func objTestConfig(init InitFunc) Config {
	return Config{
		System: twoPartitionSystem(),
		Partitions: []PartitionConfig{
			{Name: "A", Init: init},
			{Name: "B", Init: normalInit(nil)},
		},
	}
}

func TestBufferProducerConsumer(t *testing.T) {
	var received []string
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		if rc := sv.CreateBuffer("mq", 32, 2, apex.FIFO); rc != apex.NoError {
			t.Fatalf("CreateBuffer = %v", rc)
		}
		sv.CreateProcess(aperiodicTask("producer", 2), func(sv *Services) {
			for _, msg := range []string{"m1", "m2", "m3", "m4"} {
				if rc := sv.SendBuffer("mq", []byte(msg), tick.Infinity); rc != apex.NoError {
					t.Errorf("SendBuffer(%s) = %v", msg, rc)
				}
				sv.Compute(1)
			}
			sv.StopSelf()
		})
		sv.CreateProcess(aperiodicTask("consumer", 5), func(sv *Services) {
			for i := 0; i < 4; i++ {
				data, rc := sv.ReceiveBuffer("mq", tick.Infinity)
				if rc != apex.NoError {
					t.Errorf("ReceiveBuffer = %v", rc)
					return
				}
				received = append(received, string(data))
				sv.Compute(1)
			}
			sv.StopSelf()
		})
		sv.StartProcess("producer")
		sv.StartProcess("consumer")
	})))
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	want := []string{"m1", "m2", "m3", "m4"}
	if len(received) != 4 {
		t.Fatalf("received = %v", received)
	}
	for i := range want {
		if received[i] != want[i] {
			t.Fatalf("received = %v, want %v", received, want)
		}
	}
}

func TestBufferBlockingSenderTimeout(t *testing.T) {
	var rcs []apex.ReturnCode
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateBuffer("mq", 16, 1, apex.FIFO)
		sv.CreateProcess(aperiodicTask("sender", 2), func(sv *Services) {
			rcs = append(rcs, sv.SendBuffer("mq", []byte("a"), 0))  // fills
			rcs = append(rcs, sv.SendBuffer("mq", []byte("b"), 0))  // full, non-blocking
			rcs = append(rcs, sv.SendBuffer("mq", []byte("c"), 10)) // full, times out
			sv.StopSelf()
		})
		sv.StartProcess("sender")
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []apex.ReturnCode{apex.NoError, apex.NotAvailable, apex.TimedOut}
	if len(rcs) != 3 {
		t.Fatalf("rcs = %v", rcs)
	}
	for i := range want {
		if rcs[i] != want[i] {
			t.Fatalf("rcs = %v, want %v", rcs, want)
		}
	}
}

func TestBufferValidation(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		if rc := sv.CreateBuffer("b", 8, 2, apex.FIFO); rc != apex.NoError {
			t.Errorf("create = %v", rc)
		}
		if rc := sv.CreateBuffer("b", 8, 2, apex.FIFO); rc != apex.NoAction {
			t.Errorf("duplicate create = %v", rc)
		}
		if rc := sv.CreateBuffer("", 8, 2, apex.FIFO); rc != apex.InvalidParam {
			t.Errorf("empty name = %v", rc)
		}
		if rc := sv.CreateBuffer("c", 0, 2, apex.FIFO); rc != apex.InvalidParam {
			t.Errorf("zero max = %v", rc)
		}
		if rc := sv.SendBuffer("zz", []byte("x"), 0); rc != apex.InvalidConfig {
			t.Errorf("unknown buffer = %v", rc)
		}
		if rc := sv.SendBuffer("b", make([]byte, 9), 0); rc != apex.InvalidParam {
			t.Errorf("oversize = %v", rc)
		}
		if _, rc := sv.ReceiveBuffer("b", 0); rc != apex.NotAvailable {
			t.Errorf("empty receive = %v", rc)
		}
		if st, rc := sv.GetBufferStatus("b"); rc != apex.NoError || st.Depth != 2 {
			t.Errorf("status = %+v %v", st, rc)
		}
		if _, rc := sv.GetBufferStatus("zz"); rc != apex.InvalidConfig {
			t.Errorf("unknown status = %v", rc)
		}
	})))
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	// Creating in normal mode is rejected.
	pt, _ := m.Partition("A")
	sv := pt.services(0, nil)
	if rc := sv.CreateBuffer("late", 8, 2, apex.FIFO); rc != apex.InvalidMode {
		t.Errorf("create in normal mode = %v", rc)
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	var inCritical, maxInCritical int
	body := func(sv *Services) {
		for i := 0; i < 3; i++ {
			if rc := sv.WaitSemaphore("mutex", tick.Infinity); rc != apex.NoError {
				t.Errorf("WaitSemaphore = %v", rc)
				return
			}
			inCritical++
			if inCritical > maxInCritical {
				maxInCritical = inCritical
			}
			sv.Compute(3)
			inCritical--
			sv.SignalSemaphore("mutex")
			sv.Compute(1)
		}
		sv.StopSelf()
	}
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateSemaphore("mutex", 1, 1, apex.PriorityOrder)
		sv.CreateProcess(aperiodicTask("w1", 3), body)
		sv.CreateProcess(aperiodicTask("w2", 3), body)
		sv.StartProcess("w1")
		sv.StartProcess("w2")
	})))
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	if maxInCritical != 1 {
		t.Errorf("max concurrent in critical section = %d, want 1", maxInCritical)
	}
}

func TestSemaphoreValidationAndStatus(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		if rc := sv.CreateSemaphore("s", 1, 2, apex.FIFO); rc != apex.NoError {
			t.Errorf("create = %v", rc)
		}
		if rc := sv.CreateSemaphore("s", 1, 2, apex.FIFO); rc != apex.NoAction {
			t.Errorf("dup = %v", rc)
		}
		if rc := sv.CreateSemaphore("t", 3, 2, apex.FIFO); rc != apex.InvalidParam {
			t.Errorf("initial > max = %v", rc)
		}
		if rc := sv.WaitSemaphore("zz", 0); rc != apex.InvalidConfig {
			t.Errorf("unknown wait = %v", rc)
		}
		if rc := sv.SignalSemaphore("zz"); rc != apex.InvalidConfig {
			t.Errorf("unknown signal = %v", rc)
		}
		// value 1 → wait takes it; second non-blocking wait unavailable.
		if rc := sv.WaitSemaphore("s", 0); rc != apex.NoError {
			t.Errorf("wait = %v", rc)
		}
		if rc := sv.WaitSemaphore("s", 0); rc != apex.NotAvailable {
			t.Errorf("drained wait = %v", rc)
		}
		// Signal to max then NoAction beyond.
		sv.SignalSemaphore("s")
		sv.SignalSemaphore("s")
		if rc := sv.SignalSemaphore("s"); rc != apex.NoAction {
			t.Errorf("signal at max = %v", rc)
		}
		if st, rc := sv.GetSemaphoreStatus("s"); rc != apex.NoError || st.Value != 2 {
			t.Errorf("status = %+v %v", st, rc)
		}
		if _, rc := sv.GetSemaphoreStatus("zz"); rc != apex.InvalidConfig {
			t.Errorf("unknown status = %v", rc)
		}
	})))
	if err := m.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestEventBroadcast(t *testing.T) {
	woken := map[string]tick.Ticks{}
	waiterBody := func(name string) ProcessBody {
		return func(sv *Services) {
			if rc := sv.WaitEvent("go", tick.Infinity); rc != apex.NoError {
				t.Errorf("WaitEvent = %v", rc)
			}
			woken[name] = sv.GetTime()
			sv.StopSelf()
		}
	}
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateEvent("go")
		sv.CreateProcess(aperiodicTask("w1", 3), waiterBody("w1"))
		sv.CreateProcess(aperiodicTask("w2", 4), waiterBody("w2"))
		sv.CreateProcess(aperiodicTask("setter", 9), func(sv *Services) {
			sv.Compute(10)
			sv.SetEvent("go")
			sv.StopSelf()
		})
		sv.StartProcess("w1")
		sv.StartProcess("w2")
		sv.StartProcess("setter")
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(woken) != 2 {
		t.Fatalf("woken = %v, want both waiters", woken)
	}
	// Both waiters released at the set instant (same tick).
	if woken["w1"] != woken["w2"] {
		t.Errorf("wake times differ: %v", woken)
	}
}

func TestEventOperations(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		if rc := sv.CreateEvent("e"); rc != apex.NoError {
			t.Errorf("create = %v", rc)
		}
		if rc := sv.CreateEvent("e"); rc != apex.NoAction {
			t.Errorf("dup = %v", rc)
		}
		if rc := sv.CreateEvent(""); rc != apex.InvalidParam {
			t.Errorf("empty name = %v", rc)
		}
		if rc := sv.WaitEvent("zz", 0); rc != apex.InvalidConfig {
			t.Errorf("unknown = %v", rc)
		}
		if rc := sv.WaitEvent("e", 0); rc != apex.NotAvailable {
			t.Errorf("down non-blocking = %v", rc)
		}
		sv.SetEvent("e")
		if rc := sv.WaitEvent("e", 0); rc != apex.NoError {
			t.Errorf("up wait = %v", rc)
		}
		if st, rc := sv.GetEventStatus("e"); rc != apex.NoError || !st.Up {
			t.Errorf("status = %+v %v", st, rc)
		}
		sv.ResetEvent("e")
		if st, _ := sv.GetEventStatus("e"); st.Up {
			t.Error("reset did not lower event")
		}
		if _, rc := sv.GetEventStatus("zz"); rc != apex.InvalidConfig {
			t.Errorf("unknown status = %v", rc)
		}
	})))
	if err := m.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestEventWaitTimeout(t *testing.T) {
	var rc apex.ReturnCode
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateEvent("never")
		sv.CreateProcess(aperiodicTask("w", 3), func(sv *Services) {
			rc = sv.WaitEvent("never", 20)
			sv.StopSelf()
		})
		sv.StartProcess("w")
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if rc != apex.TimedOut {
		t.Errorf("rc = %v, want TIMED_OUT", rc)
	}
}

func TestBlackboard(t *testing.T) {
	var got []string
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateBlackboard("bb", 32)
		sv.CreateProcess(aperiodicTask("reader", 3), func(sv *Services) {
			// Blocks until the writer displays.
			data, rc := sv.ReadBlackboard("bb", tick.Infinity)
			if rc != apex.NoError {
				t.Errorf("blocked read = %v", rc)
			}
			got = append(got, string(data))
			// Non-blocking read of the displayed message.
			data, rc = sv.ReadBlackboard("bb", 0)
			if rc != apex.NoError {
				t.Errorf("displayed read = %v", rc)
			}
			got = append(got, string(data))
			sv.StopSelf()
		})
		sv.CreateProcess(aperiodicTask("writer", 9), func(sv *Services) {
			sv.Compute(5)
			if rc := sv.DisplayBlackboard("bb", []byte("mode=safe")); rc != apex.NoError {
				t.Errorf("display = %v", rc)
			}
			sv.StopSelf()
		})
		sv.StartProcess("reader")
		sv.StartProcess("writer")
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "mode=safe" || got[1] != "mode=safe" {
		t.Fatalf("reads = %v", got)
	}
}

func TestBlackboardOperations(t *testing.T) {
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		if rc := sv.CreateBlackboard("bb", 8); rc != apex.NoError {
			t.Errorf("create = %v", rc)
		}
		if rc := sv.CreateBlackboard("bb", 8); rc != apex.NoAction {
			t.Errorf("dup = %v", rc)
		}
		if rc := sv.DisplayBlackboard("zz", []byte("x")); rc != apex.InvalidConfig {
			t.Errorf("unknown display = %v", rc)
		}
		if rc := sv.DisplayBlackboard("bb", make([]byte, 9)); rc != apex.InvalidParam {
			t.Errorf("oversize display = %v", rc)
		}
		if _, rc := sv.ReadBlackboard("bb", 0); rc != apex.NotAvailable {
			t.Errorf("empty read = %v", rc)
		}
		sv.DisplayBlackboard("bb", []byte("x"))
		if st, rc := sv.GetBlackboardStatus("bb"); rc != apex.NoError || !st.Displayed {
			t.Errorf("status = %+v %v", st, rc)
		}
		if rc := sv.ClearBlackboard("bb"); rc != apex.NoError {
			t.Errorf("clear = %v", rc)
		}
		if _, rc := sv.ReadBlackboard("bb", 0); rc != apex.NotAvailable {
			t.Errorf("read after clear = %v", rc)
		}
		if rc := sv.ClearBlackboard("zz"); rc != apex.InvalidConfig {
			t.Errorf("unknown clear = %v", rc)
		}
		if _, rc := sv.GetBlackboardStatus("zz"); rc != apex.InvalidConfig {
			t.Errorf("unknown status = %v", rc)
		}
	})))
	if err := m.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrderWaitQueue(t *testing.T) {
	// Two waiters on a priority-ordered semaphore: the higher-priority
	// waiter (lower numeric) must be granted first even if it arrived last.
	var order []string
	m := startModule(t, objTestConfig(normalInit(func(sv *Services) {
		sv.CreateSemaphore("sem", 0, 1, apex.PriorityOrder)
		sv.CreateProcess(aperiodicTask("low", 8), func(sv *Services) {
			sv.WaitSemaphore("sem", tick.Infinity)
			order = append(order, "low")
			sv.StopSelf()
		})
		sv.CreateProcess(aperiodicTask("high", 2), func(sv *Services) {
			sv.Compute(2) // arrives later
			sv.WaitSemaphore("sem", tick.Infinity)
			order = append(order, "high")
			sv.StopSelf()
		})
		sv.CreateProcess(aperiodicTask("signaller", 9), func(sv *Services) {
			sv.Compute(10)
			sv.SignalSemaphore("sem")
			sv.Compute(2)
			sv.SignalSemaphore("sem")
			sv.StopSelf()
		})
		// low waits first.
		sv.StartProcess("low")
		sv.StartProcess("high")
		sv.StartProcess("signaller")
	})))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("grant order = %v, want high first (priority discipline)", order)
	}
}
