package core

import (
	"errors"

	"air/internal/apex"
	"air/internal/ipc"
	"air/internal/pos"
	"air/internal/tick"
)

// Interpartition communication services (paper Sect. 2.1): applications
// access sampling and queuing ports through the APEX "in a way which is
// agnostic of whether the partitions are local or remote to one another" —
// the port maps onto a channel configured at integration time, and the
// channel's latency (zero for local memory-to-memory transfer, non-zero for
// the simulated bus) is invisible to this API.

// CreateSamplingPort implements CREATE_SAMPLING_PORT: binds the named port
// to its configured channel, validating the direction.
func (sv *Services) CreateSamplingPort(port string, dir apex.Direction) apex.ReturnCode {
	if !sv.creationAllowed() {
		return apex.InvalidMode
	}
	if _, exists := sv.pt.sampPorts[port]; exists {
		return apex.NoAction
	}
	ch, isSource, err := sv.mod.router.SamplingByPort(sv.pt.name, port)
	if err != nil {
		return apex.InvalidConfig
	}
	if (dir == apex.Source) != isSource {
		return apex.InvalidConfig
	}
	sv.pt.sampPorts[port] = &samplingPort{name: port, direction: dir, channel: ch}
	return apex.NoError
}

// WriteSamplingMessage implements WRITE_SAMPLING_MESSAGE.
func (sv *Services) WriteSamplingMessage(port string, data []byte) apex.ReturnCode {
	sp, ok := sv.pt.sampPorts[port]
	if !ok {
		return apex.InvalidConfig
	}
	if sp.direction != apex.Source {
		return apex.InvalidMode
	}
	if err := sp.channel.Write(sv.pt.name, data, sv.mod.now); err != nil {
		if errors.Is(err, ipc.ErrMessageTooLarge) || errors.Is(err, ipc.ErrEmptyMessage) {
			return apex.InvalidParam
		}
		return apex.InvalidConfig
	}
	return apex.NoError
}

// ReadSamplingMessage implements READ_SAMPLING_MESSAGE: returns the latest
// message and its validity (age within the refresh period).
func (sv *Services) ReadSamplingMessage(port string) ([]byte, apex.Validity, apex.ReturnCode) {
	sp, ok := sv.pt.sampPorts[port]
	if !ok {
		return nil, apex.Invalid, apex.InvalidConfig
	}
	if sp.direction != apex.Destination {
		return nil, apex.Invalid, apex.InvalidMode
	}
	res, err := sp.channel.Read(sv.pt.name, sv.mod.now)
	if err != nil {
		if errors.Is(err, ipc.ErrNoMessage) {
			return nil, apex.Invalid, apex.NotAvailable
		}
		return nil, apex.Invalid, apex.InvalidConfig
	}
	validity := apex.Invalid
	if res.Valid {
		validity = apex.Valid
	}
	sp.lastValidity = validity
	return res.Data, validity, apex.NoError
}

// GetSamplingPortStatus implements GET_SAMPLING_PORT_STATUS.
func (sv *Services) GetSamplingPortStatus(port string) (apex.SamplingPortStatus, apex.ReturnCode) {
	sp, ok := sv.pt.sampPorts[port]
	if !ok {
		return apex.SamplingPortStatus{}, apex.InvalidConfig
	}
	cfg := sp.channel.Config()
	return apex.SamplingPortStatus{
		Name:         sp.name,
		Direction:    sp.direction,
		MaxMessage:   cfg.MaxMessage,
		Refresh:      cfg.Refresh,
		LastValidity: sp.lastValidity,
	}, apex.NoError
}

// CreateQueuingPort implements CREATE_QUEUING_PORT.
func (sv *Services) CreateQueuingPort(port string, dir apex.Direction) apex.ReturnCode {
	if !sv.creationAllowed() {
		return apex.InvalidMode
	}
	if _, exists := sv.pt.queuePorts[port]; exists {
		return apex.NoAction
	}
	ch, isSource, err := sv.mod.router.QueuingByPort(sv.pt.name, port)
	if err != nil {
		return apex.InvalidConfig
	}
	if (dir == apex.Source) != isSource {
		return apex.InvalidConfig
	}
	sv.pt.queuePorts[port] = &queuingPort{name: port, direction: dir, channel: ch}
	return apex.NoError
}

// SendQueuingMessage implements SEND_QUEUING_MESSAGE with a timeout. When
// the channel is full the caller blocks and retries each tick until space
// appears or the timeout expires — cross-partition wake-ups cannot be
// immediate because the receiving partition only drains the queue inside its
// own execution windows.
func (sv *Services) SendQueuingMessage(port string, data []byte, timeout tick.Ticks) apex.ReturnCode {
	qp, ok := sv.pt.queuePorts[port]
	if !ok {
		return apex.InvalidConfig
	}
	if qp.direction != apex.Source {
		return apex.InvalidMode
	}
	deadline := sv.wakeDeadline(timeout)
	for {
		err := qp.channel.Send(sv.pt.name, data, sv.mod.now)
		if err == nil {
			return apex.NoError
		}
		if errors.Is(err, ipc.ErrMessageTooLarge) || errors.Is(err, ipc.ErrEmptyMessage) {
			return apex.InvalidParam
		}
		if !errors.Is(err, ipc.ErrQueueFull) {
			return apex.InvalidConfig
		}
		if timeout == 0 {
			return apex.NotAvailable
		}
		if !sv.inProcess() {
			return apex.InvalidMode
		}
		if !deadline.IsInfinite() && sv.mod.now >= deadline {
			return apex.TimedOut
		}
		// Retry at the next tick (bounded by the deadline).
		retryAt := sv.mod.now + 1
		if !deadline.IsInfinite() && deadline < retryAt {
			retryAt = deadline
		}
		_ = sv.pt.kernel.Block(sv.pid, pos.WaitPort, retryAt)
		sv.blockSelf()
	}
}

// ReceiveQueuingMessage implements RECEIVE_QUEUING_MESSAGE with a timeout,
// using the same timed-retry blocking as SendQueuingMessage.
func (sv *Services) ReceiveQueuingMessage(port string, timeout tick.Ticks) ([]byte, apex.ReturnCode) {
	qp, ok := sv.pt.queuePorts[port]
	if !ok {
		return nil, apex.InvalidConfig
	}
	if qp.direction != apex.Destination {
		return nil, apex.InvalidMode
	}
	deadline := sv.wakeDeadline(timeout)
	for {
		data, err := qp.channel.Receive(sv.pt.name, sv.mod.now)
		if err == nil {
			return data, apex.NoError
		}
		if !errors.Is(err, ipc.ErrQueueEmpty) {
			return nil, apex.InvalidConfig
		}
		if timeout == 0 {
			return nil, apex.NotAvailable
		}
		if !sv.inProcess() {
			return nil, apex.InvalidMode
		}
		if !deadline.IsInfinite() && sv.mod.now >= deadline {
			return nil, apex.TimedOut
		}
		retryAt := sv.mod.now + 1
		if !deadline.IsInfinite() && deadline < retryAt {
			retryAt = deadline
		}
		_ = sv.pt.kernel.Block(sv.pid, pos.WaitPort, retryAt)
		sv.blockSelf()
	}
}

// GetQueuingPortStatus implements GET_QUEUING_PORT_STATUS.
func (sv *Services) GetQueuingPortStatus(port string) (apex.QueuingPortStatus, apex.ReturnCode) {
	qp, ok := sv.pt.queuePorts[port]
	if !ok {
		return apex.QueuingPortStatus{}, apex.InvalidConfig
	}
	cfg := qp.channel.Config()
	return apex.QueuingPortStatus{
		Name:           qp.name,
		Direction:      qp.direction,
		MaxMessage:     cfg.MaxMessage,
		Depth:          cfg.Depth,
		QueuedMessages: qp.channel.Len(),
	}, apex.NoError
}
