// Package tick provides the logical time base of the AIR simulation.
//
// Every temporal quantity in the AIR architecture — major time frames,
// window offsets and durations, process periods, time capacities and
// deadlines — is expressed in system clock ticks, exactly as in the paper's
// Algorithms 1–3. Using a dedicated integral tick domain (rather than
// time.Duration) keeps the simulation deterministic and makes the formal
// model equations (6)–(24) directly computable without rounding concerns.
package tick

import (
	"fmt"
	"strconv"
)

// Ticks is a count of logical system clock ticks. It is used both for
// instants (ticks elapsed since module start) and for durations.
type Ticks int64

// Infinity represents an unbounded duration. A process with relative
// deadline Infinity has no deadline (D_{m,q} = ∞ in the system model), which
// exempts it from deadline violation monitoring per eq. (24).
const Infinity Ticks = 1<<63 - 1

// String renders the tick count, using "∞" for Infinity.
func (t Ticks) String() string {
	if t == Infinity {
		return "∞"
	}
	return strconv.FormatInt(int64(t), 10)
}

// IsInfinite reports whether t is the unbounded sentinel.
func (t Ticks) IsInfinite() bool { return t == Infinity }

// GCD returns the greatest common divisor of a and b. GCD(0, b) = b.
func GCD(a, b Ticks) Ticks {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, with LCM(0, x) = 0.
// It returns an error on overflow, which would silently corrupt major time
// frame computations per eq. (22).
func LCM(a, b Ticks) (Ticks, error) {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a == 0 || b == 0 {
		return 0, nil
	}
	g := GCD(a, b)
	q := a / g
	if q != 0 && b > Infinity/q {
		return 0, fmt.Errorf("tick: lcm(%d, %d) overflows", a, b)
	}
	return q * b, nil
}

// LCMAll returns the least common multiple of all values. An empty input
// yields 1, the neutral element for eq. (22)'s MTF multiplicity check.
func LCMAll(values []Ticks) (Ticks, error) {
	result := Ticks(1)
	for _, v := range values {
		l, err := LCM(result, v)
		if err != nil {
			return 0, err
		}
		result = l
	}
	return result, nil
}

// Min returns the smaller of a and b.
func Min(a, b Ticks) Ticks {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Ticks) Ticks {
	if a > b {
		return a
	}
	return b
}
