package tick

import (
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	tests := []struct {
		a, b, want Ticks
	}{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{12, 18, 6},
		{18, 12, 6},
		{7, 13, 1},
		{650, 1300, 650},
		{-12, 18, 6},
		{12, -18, 6},
		{1, 1, 1},
	}
	for _, tt := range tests {
		if got := GCD(tt.a, tt.b); got != tt.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLCM(t *testing.T) {
	tests := []struct {
		a, b, want Ticks
	}{
		{0, 5, 0},
		{5, 0, 0},
		{4, 6, 12},
		{650, 1300, 1300},
		{650, 650, 650},
		{3, 7, 21},
		{1, 9, 9},
	}
	for _, tt := range tests {
		got, err := LCM(tt.a, tt.b)
		if err != nil {
			t.Fatalf("LCM(%d, %d): unexpected error %v", tt.a, tt.b, err)
		}
		if got != tt.want {
			t.Errorf("LCM(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLCMOverflow(t *testing.T) {
	if _, err := LCM(Infinity-1, Infinity-2); err == nil {
		t.Fatal("LCM of near-max values should report overflow")
	}
}

func TestLCMAll(t *testing.T) {
	tests := []struct {
		name   string
		values []Ticks
		want   Ticks
	}{
		{"empty", nil, 1},
		{"single", []Ticks{650}, 650},
		{"fig8 cycles", []Ticks{1300, 650, 650, 1300}, 1300},
		{"coprime", []Ticks{3, 5, 7}, 105},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := LCMAll(tt.values)
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got != tt.want {
				t.Errorf("LCMAll(%v) = %d, want %d", tt.values, got, tt.want)
			}
		})
	}
}

func TestTicksString(t *testing.T) {
	if got := Ticks(42).String(); got != "42" {
		t.Errorf("String() = %q, want %q", got, "42")
	}
	if got := Infinity.String(); got != "∞" {
		t.Errorf("Infinity.String() = %q, want ∞", got)
	}
	if !Infinity.IsInfinite() {
		t.Error("Infinity.IsInfinite() = false")
	}
	if Ticks(7).IsInfinite() {
		t.Error("Ticks(7).IsInfinite() = true")
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
}

// Property: gcd divides both operands and lcm is a multiple of both.
func TestGCDLCMProperties(t *testing.T) {
	prop := func(a, b int16) bool {
		x, y := Ticks(a), Ticks(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		if x%g != 0 || y%g != 0 {
			return false
		}
		l, err := LCM(x, y)
		if err != nil {
			return false
		}
		if x == 0 || y == 0 {
			return l == 0
		}
		if l%x != 0 || l%y != 0 {
			return false
		}
		// Fundamental identity: |a*b| = gcd*lcm.
		prod := int64(x) * int64(y)
		if prod < 0 {
			prod = -prod
		}
		return prod == int64(g)*int64(l)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: LCMAll result is a multiple of every input.
func TestLCMAllProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		values := make([]Ticks, 0, len(raw))
		for _, r := range raw {
			if r == 0 {
				continue // zero collapses the lcm; covered separately
			}
			values = append(values, Ticks(r))
		}
		l, err := LCMAll(values)
		if err != nil {
			return true // overflow on huge random inputs is a valid outcome
		}
		for _, v := range values {
			if l%v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
