// Package archive is the bitemporal flight archive: a durable trace store
// for observability-spine events, keyed on the two time axes a forensic
// investigation actually asks about — valid time (the simulation tick the
// event describes) and transaction time (the monotonically increasing record
// sequence in which the archive learned it). The flight recorder
// (internal/timeline) keeps a bounded ring frozen at the first HM error;
// the archive keeps everything, durably, so "what did the Health Monitor
// believe at tick T as of record R of run X?" is answerable long after the
// run — and two runs' histories can be diffed to localize the first tick a
// fault variant diverged from its fault-free twin.
//
// # On-disk format
//
// An archive is a directory of bounded segment files plus a manifest:
//
//	MANIFEST.json     sealed-segment catalog (records, seq/tick bounds,
//	                  sparse tick index), rewritten atomically at each seal
//	seg-000001.jsonl  CRC-framed records, one per line
//	seg-000002.jsonl  ...
//
// Each record line is framed as
//
//	<crc32-ieee, 8 lowercase hex digits> <JSON record>\n
//
// where the JSON payload is exactly the pinned obs.Record wire form, so an
// archived stream re-encodes byte-identically to the live JSONL sink. The
// transaction sequence is implicit: the i-th record of the concatenated
// segment stream has seq i (1-based) — appending is the only mutation, so
// position is identity.
//
// Durability matches the fleet journal: a segment is fsynced when sealed and
// the manifest is replaced atomically (write-temp, fsync, rename); the
// active segment is recovered on reopen by validating frames and truncating
// the torn tail, so a writer killed mid-append loses at most the unframed
// suffix of its last buffer flush.
//
// The write path is allocation-free: Sink.Emit encodes frames into a
// preallocated staging buffer with a hand-rolled JSON appender, and buffer
// flushes / segment seals happen off the hot path, amortized over thousands
// of appends, so a module tick with the sink attached stays on its 0 allocs
// budget.
package archive

import (
	"fmt"
	"sort"
)

// Defaults for Options.
const (
	// DefaultSegmentRecords bounds one segment file; a seal (fsync +
	// manifest rewrite) happens once per this many appends.
	DefaultSegmentRecords = 8192
	// DefaultIndexEvery is the sparse tick-index stride: one index entry
	// per this many records.
	DefaultIndexEvery = 64
	// DefaultBufBytes sizes the staging buffer the hot path encodes into.
	DefaultBufBytes = 1 << 16
)

// manifestName is the catalog file within an archive directory.
const manifestName = "MANIFEST.json"

// manifestVersion guards the catalog schema.
const manifestVersion = 1

// Options configures a Sink.
type Options struct {
	// SegmentRecords bounds records per segment file (0 selects
	// DefaultSegmentRecords).
	SegmentRecords int
	// IndexEvery is the sparse tick-index stride (0 selects
	// DefaultIndexEvery).
	IndexEvery int
	// BufBytes sizes the staging buffer (0 selects DefaultBufBytes).
	BufBytes int
}

func (o Options) withDefaults() Options {
	if o.SegmentRecords <= 0 {
		o.SegmentRecords = DefaultSegmentRecords
	}
	if o.IndexEvery <= 0 {
		o.IndexEvery = DefaultIndexEvery
	}
	if o.BufBytes <= 0 {
		o.BufBytes = DefaultBufBytes
	}
	return o
}

// IndexEntry is one sparse tick-index point: the record at Offset within its
// segment carries transaction seq Seq and valid time Tick. Records are
// appended in nondecreasing tick order, so every record before an entry has
// a tick no later than the entry's — the invariant range scans seek on.
type IndexEntry struct {
	Seq    uint64 `json:"seq"`
	Tick   int64  `json:"t"`
	Offset int64  `json:"offset"`
}

// SegmentMeta catalogs one sealed segment.
type SegmentMeta struct {
	Name     string       `json:"name"`
	Records  uint64       `json:"records"`
	SeqStart uint64       `json:"seqStart"` // 1-based seq of the first record
	MinTick  int64        `json:"minTick"`
	MaxTick  int64        `json:"maxTick"`
	Bytes    int64        `json:"bytes"`
	Index    []IndexEntry `json:"index,omitempty"`
}

// Manifest is the archive catalog: every sealed segment in order. The active
// (unsealed) segment is deliberately absent — readers recover it by frame
// validation, exactly as a reopening writer does.
type Manifest struct {
	Version  int           `json:"version"`
	Records  uint64        `json:"records"` // total sealed records
	Segments []SegmentMeta `json:"segments"`
}

// segmentName renders the n-th (1-based) segment file name.
func segmentName(n int) string {
	return fmt.Sprintf("seg-%06d.jsonl", n)
}

// Stats is a point-in-time accounting of an archive writer, exported to the
// Prometheus air_archive_* gauges.
type Stats struct {
	// Segments counts segment files (sealed plus the active one once it
	// holds a record).
	Segments uint64 `json:"segments"`
	// Bytes is the total frame bytes appended, staged or flushed.
	Bytes uint64 `json:"bytes"`
	// Records is the total records appended (the current transaction seq).
	Records uint64 `json:"records"`
}

// InTickRange reports whether valid time t lies inside the inclusive
// [since, until] window; until < 0 means unbounded above. It is the single
// range predicate shared by the reader's scans and airtrace's -since/-until
// filters, so the CLI and the archive agree on boundary semantics.
func InTickRange(t, since, until int64) bool {
	return t >= since && (until < 0 || t <= until)
}

// sortIndex keeps recovered index entries ordered by seq (they are built in
// order; this is a guard for hand-edited manifests).
func sortIndex(idx []IndexEntry) {
	sort.Slice(idx, func(i, j int) bool { return idx[i].Seq < idx[j].Seq })
}
