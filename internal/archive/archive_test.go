package archive_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"air/internal/archive"
	"air/internal/core"
	"air/internal/obs"
	"air/internal/workload"
)

// genEvents builds a deterministic synthetic spine stream with
// nondecreasing ticks and a mix of the kinds the as-of fold cares about.
// Events are built through obs.Record — the wire form — because only the
// emitting layers may construct raw obs.Event values.
func genEvents(n int) []obs.Event {
	out := make([]obs.Event, 0, n)
	state := uint64(0x9E3779B97F4A7C15)
	t := int64(0)
	parts := []string{"P1", "P2", "P3", "P4"}
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		r := state >> 33
		t += int64(r % 3)
		p := parts[r%4]
		var rec obs.Record
		switch r % 7 {
		case 0:
			rec = obs.Record{Time: t, Kind: "HM_REPORT", Partition: p,
				Code: "DEADLINE_VIOLATION", Level: "PARTITION", Action: "WARM_RESTART"}
		case 1:
			rec = obs.Record{Time: t, Kind: "SCHEDULE_SWITCH", Detail: "requested schedule chi2"}
		case 2:
			rec = obs.Record{Time: t, Kind: "QUARANTINE_ENTER", Partition: p}
		case 3:
			rec = obs.Record{Time: t, Kind: "QUARANTINE_EXIT", Partition: p}
		case 4:
			rec = obs.Record{Time: t, Kind: "WINDOW_ACTIVATION", Partition: p,
				Latency: int64(r % 100), Core: int(r % 2)}
		case 5:
			rec = obs.Record{Time: t, Kind: "SCHEDULE_DEGRADE", Detail: "degraded to schedule safe"}
		default:
			rec = obs.Record{Time: t, Kind: "PROCESS_COMPLETE", Partition: p, Process: "hk",
				Detail: "odd \"detail\" with \\ backslash and\ttab"}
		}
		out = append(out, rec.Event())
	}
	return out
}

// writeArchive runs events through a sink into dir.
func writeArchive(t *testing.T, dir string, events []obs.Event, opts archive.Options) {
	t.Helper()
	s, err := archive.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, dir string) []archive.SeqEvent {
	t.Helper()
	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Events(archive.Query{UntilTick: -1})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestRoundTripBytes proves the store is lossless and wire-faithful: the
// archived stream, re-encoded through the pinned JSONL encoder, is
// byte-identical to encoding the original events directly.
func TestRoundTripBytes(t *testing.T) {
	events := genEvents(300)
	dir := t.TempDir()
	writeArchive(t, dir, events, archive.Options{SegmentRecords: 64, IndexEvery: 8})

	got := readAll(t, dir)
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i, se := range got {
		if se.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, se.Seq, i+1)
		}
		if se.Event != events[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, se.Event, events[i])
		}
	}

	var live, replay bytes.Buffer
	if err := obs.EncodeEvents(&live, events); err != nil {
		t.Fatal(err)
	}
	replayed := make([]obs.Event, len(got))
	for i, se := range got {
		replayed[i] = se.Event
	}
	if err := obs.EncodeEvents(&replay, replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), replay.Bytes()) {
		t.Fatal("replayed stream is not byte-identical to the live encoding")
	}
}

// TestModuleSinkRoundTrip attaches the archive sink and an in-memory
// recorder to a real faulty module run and proves the archive saw exactly
// the spine.
func TestModuleSinkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := archive.Open(dir, archive.Options{SegmentRecords: 256})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewModule(workload.Config(workload.Options{TraceCapacity: -1, InjectFault: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	rec := &recorder{}
	m.Bus().Attach(rec)
	m.Bus().Attach(s)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*1300; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, dir)
	if len(got) != len(rec.events) {
		t.Fatalf("archived %d events, spine emitted %d", len(got), len(rec.events))
	}
	for i := range got {
		if got[i].Event != rec.events[i] {
			t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, got[i].Event, rec.events[i])
		}
	}
	if len(got) == 0 {
		t.Fatal("faulty run emitted no events")
	}
}

type recorder struct{ events []obs.Event }

func (r *recorder) Emit(e obs.Event) { r.events = append(r.events, e) }

// referenceAsOf is the independent linear fold the property test checks
// AsOf against: walk the prefix, apply the documented semantics.
func referenceAsOf(events []obs.Event, asTick int64, asSeq uint64) archive.State {
	st := archive.State{AsOfTick: asTick, AsOfSeq: asSeq}
	quarantined := map[string]bool{}
	for i, e := range events {
		seq := uint64(i + 1)
		if asSeq > 0 && seq > asSeq {
			break
		}
		if int64(e.Time) > asTick {
			break
		}
		st.Events++
		st.LastTick, st.LastSeq = int64(e.Time), seq
		switch e.Kind {
		case obs.KindScheduleSwitch, obs.KindScheduleDegrade, obs.KindScheduleRestore:
			d := e.Detail
			if i := strings.LastIndexByte(d, ' '); i >= 0 {
				st.Schedule = d[i+1:]
			} else {
				st.Schedule = ""
			}
			st.Degraded = e.Kind == obs.KindScheduleDegrade ||
				(st.Degraded && e.Kind != obs.KindScheduleRestore)
		case obs.KindHMReport:
			if st.HM == nil {
				st.HM = map[string]archive.HMEntry{}
			}
			ent := st.HM[string(e.Partition)]
			ent.Code, ent.Level, ent.Action = e.Code, e.Level, e.Action
			ent.Tick = int64(e.Time)
			ent.Reports++
			st.HM[string(e.Partition)] = ent
		case obs.KindQuarantineEnter:
			quarantined[string(e.Partition)] = true
		case obs.KindQuarantineExit:
			delete(quarantined, string(e.Partition))
		}
	}
	for p := range quarantined {
		st.Quarantined = append(st.Quarantined, p)
	}
	sort.Strings(st.Quarantined)
	return st
}

// TestAsOfProperty drives random (tick, seq) cut points through AsOf and
// checks every reconstruction against the reference fold of the event
// prefix — the bitemporal correctness property.
func TestAsOfProperty(t *testing.T) {
	events := genEvents(600)
	dir := t.TempDir()
	writeArchive(t, dir, events, archive.Options{SegmentRecords: 100, IndexEvery: 8})
	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	maxTick := int64(events[len(events)-1].Time)
	state := uint64(12345)
	for trial := 0; trial < 80; trial++ {
		state = state*6364136223846793005 + 1442695040888963407
		asTick := int64(state>>33) % (maxTick + 2)
		state = state*6364136223846793005 + 1442695040888963407
		asSeq := (state >> 33) % uint64(len(events)+40)
		got, err := r.AsOf(asTick, asSeq)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceAsOf(events, asTick, asSeq)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("AsOf(%d, %d) diverges from reference:\n got %+v\nwant %+v",
				asTick, asSeq, got, want)
		}
	}
}

// TestScanRange checks tick-window and kind filtering against a plain
// linear filter, across segment boundaries and through the sparse-index
// seek path.
func TestScanRange(t *testing.T) {
	events := genEvents(400)
	dir := t.TempDir()
	writeArchive(t, dir, events, archive.Options{SegmentRecords: 64, IndexEvery: 4})
	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	maxTick := int64(events[len(events)-1].Time)
	windows := []struct{ since, until int64 }{
		{0, -1},
		{0, maxTick / 2},
		{maxTick / 3, 2 * maxTick / 3},
		{maxTick - 1, -1},
		{maxTick + 10, -1}, // empty
	}
	for _, w := range windows {
		for _, kinds := range [][]obs.Kind{nil, {obs.KindHMReport}, {obs.KindHMReport, obs.KindScheduleSwitch}} {
			got, err := r.Events(archive.Query{SinceTick: w.since, UntilTick: w.until, Kinds: kinds})
			if err != nil {
				t.Fatal(err)
			}
			var want []archive.SeqEvent
			for i, e := range events {
				if !archive.InTickRange(int64(e.Time), w.since, w.until) {
					continue
				}
				ok := len(kinds) == 0
				for _, k := range kinds {
					ok = ok || e.Kind == k
				}
				if ok {
					want = append(want, archive.SeqEvent{Seq: uint64(i + 1), Event: e})
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("scan [%d,%d] kinds=%v: got %d records, want %d",
					w.since, w.until, kinds, len(got), len(want))
			}
		}
	}
}

// TestReopenAppend closes an archive and reopens it for appending: seqs
// continue, nothing is lost.
func TestReopenAppend(t *testing.T) {
	events := genEvents(150)
	dir := t.TempDir()
	writeArchive(t, dir, events[:90], archive.Options{SegmentRecords: 40})
	writeArchive(t, dir, events[90:], archive.Options{SegmentRecords: 40})
	got := readAll(t, dir)
	if len(got) != len(events) {
		t.Fatalf("got %d events after reopen, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Seq != uint64(i+1) || got[i].Event != events[i] {
			t.Fatalf("record %d wrong after reopen append", i)
		}
	}
}

// TestTornTailRecovery simulates a crash mid-append: the abandoned active
// segment gets a torn half-frame, the reader ignores it, and a reopening
// writer truncates it before appending resumes.
func TestTornTailRecovery(t *testing.T) {
	events := genEvents(40)
	dir := t.TempDir()
	s, err := archive.Open(dir, archive.Options{SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Abandon the sink (no Close, no seal) and tear the active segment:
	// 2 sealed segments of 16 records, 8 recovered-tail records, then junk.
	active := filepath.Join(dir, "seg-000003.jsonl")
	f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"t\":12,\"ki"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := readAll(t, dir)
	if len(got) != len(events) {
		t.Fatalf("reader saw %d records through the torn tail, want %d", len(got), len(events))
	}

	s2, err := archive.Open(dir, archive.Options{SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	extra := genEvents(5)
	for _, e := range extra {
		s2.Emit(e)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	got = readAll(t, dir)
	if len(got) != len(events)+len(extra) {
		t.Fatalf("got %d records after torn reopen, want %d", len(got), len(events)+len(extra))
	}
	for i, e := range append(append([]obs.Event(nil), events...), extra...) {
		if got[i].Seq != uint64(i+1) || got[i].Event != e {
			t.Fatalf("record %d wrong after torn-tail recovery", i)
		}
	}
}

// TestDiff checks divergence localization: identical streams, a mid-stream
// mutation, and a strict prefix.
func TestDiff(t *testing.T) {
	base := genEvents(200)
	dir1, dir2 := t.TempDir(), t.TempDir()
	opts := archive.Options{SegmentRecords: 64}
	writeArchive(t, dir1, base, opts)
	writeArchive(t, dir2, base, opts)
	r1, err := archive.OpenReader(dir1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := archive.OpenReader(dir2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := archive.Diff(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Diverged {
		t.Fatalf("identical archives reported divergent: %+v", d)
	}

	// Mutate record 120 (0-based index 119).
	variant := append([]obs.Event(nil), base...)
	rec := obs.ToRecord(variant[119])
	rec.Detail = "mutated"
	variant[119] = rec.Event()
	dir3 := t.TempDir()
	writeArchive(t, dir3, variant, opts)
	r3, err := archive.OpenReader(dir3)
	if err != nil {
		t.Fatal(err)
	}
	d, err = archive.Diff(r1, r3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Diverged || d.Seq != 120 {
		t.Fatalf("divergence at seq %d (diverged=%v), want 120", d.Seq, d.Diverged)
	}
	if d.Tick != int64(base[119].Time) {
		t.Fatalf("divergence tick %d, want %d", d.Tick, int64(base[119].Time))
	}
	if d.A == nil || d.B == nil || d.B.Detail != "mutated" {
		t.Fatalf("divergence records wrong: %+v", d)
	}

	// Strict prefix: the shorter stream diverges just past its end.
	dir4 := t.TempDir()
	writeArchive(t, dir4, base[:50], opts)
	r4, err := archive.OpenReader(dir4)
	if err != nil {
		t.Fatal(err)
	}
	d, err = archive.Diff(r1, r4)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Diverged || d.Seq != 51 || d.B != nil || d.A == nil {
		t.Fatalf("prefix divergence wrong: %+v", d)
	}
	if d.Tick != int64(base[50].Time) {
		t.Fatalf("prefix divergence tick %d, want %d", d.Tick, int64(base[50].Time))
	}
}

// TestStats checks the writer's gauge accounting against the reader's view.
func TestStats(t *testing.T) {
	events := genEvents(100)
	dir := t.TempDir()
	s, err := archive.Open(dir, archive.Options{SegmentRecords: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		s.Emit(e)
	}
	st := s.Stats()
	if st.Records != 100 {
		t.Fatalf("stats records %d, want 100", st.Records)
	}
	if st.Segments != 4 { // 3 sealed × 30 + active × 10
		t.Fatalf("stats segments %d, want 4", st.Segments)
	}
	if st.Bytes == 0 {
		t.Fatal("stats bytes zero")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var total int64
	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range r.Segments() {
		total += seg.Bytes
	}
	if uint64(total) != st.Bytes {
		t.Fatalf("stats bytes %d, on-disk %d", st.Bytes, total)
	}
}

// TestHandler exercises the /archive/* query endpoints over a root with two
// runs.
func TestHandler(t *testing.T) {
	base := genEvents(150)
	variant := append([]obs.Event(nil), base[:100]...)
	rec := obs.ToRecord(base[100])
	rec.Code = "INJECTED"
	rec.Kind = "HM_REPORT"
	variant = append(variant, rec.Event())
	root := t.TempDir()
	writeArchive(t, filepath.Join(root, "run-a"), base, archive.Options{SegmentRecords: 64})
	writeArchive(t, filepath.Join(root, "run-b"), variant, archive.Options{SegmentRecords: 64})
	srv := httptest.NewServer(archive.Handler(root))
	defer srv.Close()

	get := func(path string) (*httptest.ResponseRecorder, []byte) {
		t.Helper()
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(res.Body); err != nil {
			t.Fatal(err)
		}
		rr := httptest.NewRecorder()
		rr.Code = res.StatusCode
		return rr, buf.Bytes()
	}

	rr, body := get("/archive/asof?run=run-a")
	if rr.Code != 200 {
		t.Fatalf("asof status %d: %s", rr.Code, body)
	}
	var st archive.State
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Events != 150 {
		t.Fatalf("asof folded %d events, want 150", st.Events)
	}

	rr, body = get("/archive/range?run=run-a&kind=HM_REPORT&limit=5")
	if rr.Code != 200 {
		t.Fatalf("range status %d: %s", rr.Code, body)
	}
	var rows []struct {
		Seq    uint64     `json:"seq"`
		Record obs.Record `json:"record"`
	}
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("range returned %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Record.Kind != "HM_REPORT" {
			t.Fatalf("kind filter leaked %q", row.Record.Kind)
		}
	}

	rr, body = get("/archive/diff?a=run-a&b=run-b")
	if rr.Code != 200 {
		t.Fatalf("diff status %d: %s", rr.Code, body)
	}
	var d archive.Divergence
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Diverged || d.Seq != 101 {
		t.Fatalf("diff endpoint: %+v", d)
	}

	rr, _ = get("/archive/asof?run=../escape")
	if rr.Code != 400 {
		t.Fatalf("path escape not rejected: status %d", rr.Code)
	}
	rr, _ = get("/archive/asof?run=missing")
	if rr.Code != 404 {
		t.Fatalf("missing run: status %d", rr.Code)
	}
}
