package archive

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"air/internal/obs"
)

// Frame layout: 8 lowercase hex digits of the IEEE CRC32 of the JSON
// payload, one space, the payload, one newline.
const (
	crcHexLen   = 8
	frameMinLen = crcHexLen + 1 + 2 // "crc {}"
)

// frameSlack bounds the fixed part of a frame: CRC prefix, every field name,
// braces/commas/quotes, and three 20-digit integers.
const frameSlack = 256

var errFrame = errors.New("archive: invalid frame")

const hexDigits = "0123456789abcdef"

// frameBound returns a worst-case byte bound for one event's frame (every
// string byte doubled for escaping).
//
//air:hotpath
func frameBound(e obs.Event) int {
	return frameSlack + 2*(len(e.Partition)+len(e.Process)+len(e.Detail)+
		len(e.Code)+len(e.Level)+len(e.Action))
}

// appendFrame encodes one event as a CRC-framed JSON line in the pinned
// obs.Record field order and omitempty set, appending to dst.
//
//air:hotpath
//air:allow(alloc): every append writes into the caller's staging buffer, whose remaining capacity Emit checks against frameBound before the call — growth never happens for bounded spine strings
func appendFrame(dst []byte, e obs.Event) []byte {
	mark := len(dst)
	// Reserve the CRC prefix; the digits are patched in once the payload is
	// encoded.
	dst = append(dst, "00000000 "...)
	body := len(dst)
	dst = append(dst, `{"t":`...)
	dst = appendInt(dst, int64(e.Time))
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, e.Kind.String()) //air:allow(call): array-indexed kind-name lookup, allocation-free for every valid spine kind
	if e.Core != 0 {
		dst = append(dst, `,"core":`...)
		dst = appendInt(dst, int64(e.Core))
	}
	if e.Partition != "" {
		dst = append(dst, `,"partition":`...)
		dst = appendJSONString(dst, string(e.Partition))
	}
	if e.Process != "" {
		dst = append(dst, `,"process":`...)
		dst = appendJSONString(dst, e.Process)
	}
	if e.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, e.Detail)
	}
	if e.Latency != 0 {
		dst = append(dst, `,"latency":`...)
		dst = appendInt(dst, int64(e.Latency))
	}
	if e.Code != "" {
		dst = append(dst, `,"code":`...)
		dst = appendJSONString(dst, e.Code)
	}
	if e.Level != "" {
		dst = append(dst, `,"level":`...)
		dst = appendJSONString(dst, e.Level)
	}
	if e.Action != "" {
		dst = append(dst, `,"action":`...)
		dst = appendJSONString(dst, e.Action)
	}
	dst = append(dst, '}')
	crc := crc32.ChecksumIEEE(dst[body:]) //air:allow(call): table-driven stdlib CRC over the staged bytes, allocation-free
	for i := crcHexLen - 1; i >= 0; i-- {
		dst[mark+i] = hexDigits[crc&0xF]
		crc >>= 4
	}
	return append(dst, '\n')
}

// appendJSONString appends s as a quoted JSON string, escaping only what
// validity requires (quote, backslash, control bytes); non-ASCII passes
// through as UTF-8. The output need not match encoding/json byte-for-byte —
// it only has to decode to the same obs.Record.
//
//air:hotpath
//air:allow(alloc): appends stay inside the frameBound reservation (worst case doubles every byte), so the staging buffer never grows here
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendInt appends the decimal rendering of v.
//
//air:hotpath
//air:allow(alloc): at most 21 bytes appended, inside the frameBound reservation; the scratch array stays on the stack
func appendInt(dst []byte, v int64) []byte {
	u := uint64(v)
	if v < 0 {
		dst = append(dst, '-')
		u = uint64(-v)
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

// decodeFrame validates one frame line (without its trailing newline) and
// decodes the payload. Any violation — short line, bad hex, CRC mismatch,
// malformed JSON — is reported as errFrame-wrapped so callers can
// distinguish a torn tail from an I/O failure.
func decodeFrame(line []byte) (obs.Record, error) {
	var rec obs.Record
	if len(line) < frameMinLen || line[crcHexLen] != ' ' {
		return rec, fmt.Errorf("%w: short or unframed line", errFrame)
	}
	var want uint32
	for i := 0; i < crcHexLen; i++ {
		c := line[i]
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return rec, fmt.Errorf("%w: bad crc digit %q", errFrame, c)
		}
		want = want<<4 | d
	}
	body := line[crcHexLen+1:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return rec, fmt.Errorf("%w: crc mismatch (want %08x, got %08x)", errFrame, want, got)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("%w: %v", errFrame, err)
	}
	return rec, nil
}
