package archive

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"air/internal/obs"
)

// Sink is the archive writer: an obs.Sink that appends every spine event it
// sees into the archive directory as CRC-framed records. Emit stages frames
// into a preallocated buffer; flushing the buffer and sealing segments
// happen off the hot path. The sink is single-writer, same as the module
// spine that feeds it; it is not internally synchronized — except Stats,
// which reads lock-free published gauges and is safe to call from the
// telemetry server's goroutine while the simulation appends.
type Sink struct {
	dir  string
	opts Options
	err  error

	f   *os.File // active segment
	buf []byte   // staging buffer (preallocated, flushed before full)

	manifest Manifest
	seq      uint64 // records appended overall (== last record's seq)

	segNum     int    // 1-based number of the active segment
	segRecords uint64 // records in the active segment
	segBytes   int64  // flushed bytes of the active segment
	segMin     int64  // min valid time in the active segment
	segMax     int64  // max valid time in the active segment
	index      []IndexEntry

	bytesTotal uint64 // frame bytes appended across all segments

	// pub mirrors the gauges Stats serves: atomically published so the
	// telemetry goroutine can poll them while the spine appends.
	pub struct{ segments, bytes, records atomic.Uint64 }
}

// Open creates (or reopens) the archive directory for appending. Reopening
// an archive whose writer died mid-append recovers exactly like the fleet
// journal: sealed segments are authoritative via the manifest, and the
// active segment's torn tail — any suffix that fails frame validation — is
// truncated before appending resumes.
func Open(dir string, opts Options) (*Sink, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: open: %w", err)
	}
	s := &Sink{
		dir:  dir,
		opts: opts,
		buf:  make([]byte, 0, opts.BufBytes),
		// One entry per stride, plus the stride-0 entry of the next record
		// when a seal is pending: capacity-bounded for the segment's life.
		index: make([]IndexEntry, 0, opts.SegmentRecords/opts.IndexEvery+1),
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	s.manifest = m
	s.seq = m.Records
	for _, seg := range m.Segments {
		s.bytesTotal += uint64(seg.Bytes)
	}
	s.segNum = len(m.Segments) + 1
	if err := s.recoverActive(); err != nil {
		return nil, err
	}
	if s.f == nil {
		if err := s.openSegment(); err != nil {
			return nil, err
		}
	}
	s.pub.records.Store(s.seq)
	s.pub.bytes.Store(s.bytesTotal)
	segs := uint64(len(s.manifest.Segments))
	if s.segRecords > 0 {
		segs++
	}
	s.pub.segments.Store(segs)
	return s, nil
}

// readManifest loads the catalog; a missing file is an empty archive.
func readManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		m.Version = manifestVersion
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("archive: manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("archive: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("archive: manifest: unsupported version %d", m.Version)
	}
	return m, nil
}

// recoverActive validates the active (post-manifest) segment if one exists,
// truncates its torn tail, and resumes the writer's counters and sparse
// index from the valid prefix.
func (s *Sink) recoverActive() error {
	path := filepath.Join(s.dir, segmentName(s.segNum))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("archive: recover: %w", err)
	}
	br := bufio.NewReader(f)
	var valid int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// A line without its newline is a torn write; drop it.
			break
		}
		rec, ferr := decodeFrame(line[:len(line)-1])
		if ferr != nil {
			break
		}
		s.noteRecord(rec.Time, valid)
		valid += int64(len(line))
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return fmt.Errorf("archive: recover: truncate: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("archive: recover: %w", err)
	}
	s.f = f
	s.segBytes = valid
	s.bytesTotal += uint64(valid)
	return nil
}

// noteRecord advances the per-segment accounting (seq, tick bounds, sparse
// index) for one record whose frame starts at offset within the active
// segment. Shared by the hot append path and recovery.
//
//air:hotpath
func (s *Sink) noteRecord(t int64, offset int64) {
	if s.segRecords%uint64(s.opts.IndexEvery) == 0 {
		s.index = append(s.index, IndexEntry{Seq: s.seq + 1, Tick: t, Offset: offset}) //air:allow(alloc): capacity-bounded to one entry per stride, reset at seal
	}
	if s.segRecords == 0 {
		s.segMin = t
		s.pub.segments.Store(uint64(len(s.manifest.Segments)) + 1) //air:allow(call): lock-free gauge publish for the telemetry goroutine, once per segment
	}
	s.segMax = t
	s.segRecords++
	s.seq++
	s.pub.records.Store(s.seq) //air:allow(call): lock-free gauge publish for the telemetry goroutine
}

// openSegment creates the active segment file.
func (s *Sink) openSegment() error {
	path := filepath.Join(s.dir, segmentName(s.segNum))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("archive: segment: %w", err)
	}
	s.f = f
	return nil
}

// Emit appends one event. Implements obs.Sink. The first error sticks and
// suppresses further output; check it via Flush or Close.
//
//air:hotpath
func (s *Sink) Emit(e obs.Event) {
	if s == nil || s.err != nil {
		return
	}
	need := frameBound(e)
	if len(s.buf)+need > cap(s.buf) || s.segRecords >= uint64(s.opts.SegmentRecords) {
		s.roll() //air:allow(call): buffer flush and segment seal run once per thousands of appends, off the hot path
		if s.err != nil {
			return
		}
	}
	s.noteRecord(int64(e.Time), s.segBytes+int64(len(s.buf)))
	mark := len(s.buf)
	s.buf = appendFrame(s.buf, e) //air:allow(alloc): grows only when a single frame exceeds the staging buffer, which frameBound prevents for bounded spine details
	s.bytesTotal += uint64(len(s.buf) - mark)
	s.pub.bytes.Store(s.bytesTotal) //air:allow(call): lock-free gauge publish for the telemetry goroutine
}

// roll drains the staging buffer into the active segment and, when the
// segment is full, seals it and opens the next one. Never on the hot path.
func (s *Sink) roll() {
	if s.err != nil {
		return
	}
	if len(s.buf) > 0 {
		//air:allow(durable): roll IS the framing encoder; s.buf holds whole CRC-framed records
		n, err := s.f.Write(s.buf)
		s.segBytes += int64(n)
		s.buf = s.buf[:0]
		if err != nil {
			s.err = fmt.Errorf("archive: write: %w", err)
			return
		}
	}
	if s.segRecords >= uint64(s.opts.SegmentRecords) {
		s.seal()
	}
}

// seal makes the active segment durable and catalogs it: fsync the file,
// append its metadata (record count, seq/tick bounds, sparse index) to the
// manifest, atomically replace the manifest, and open the next segment.
func (s *Sink) seal() {
	if s.err = s.f.Sync(); s.err != nil {
		s.err = fmt.Errorf("archive: seal: %w", s.err)
		return
	}
	if s.err = s.f.Close(); s.err != nil {
		s.err = fmt.Errorf("archive: seal: %w", s.err)
		return
	}
	s.f = nil
	meta := SegmentMeta{
		Name:     segmentName(s.segNum),
		Records:  s.segRecords,
		SeqStart: s.seq - s.segRecords + 1,
		MinTick:  s.segMin,
		MaxTick:  s.segMax,
		Bytes:    s.segBytes,
		Index:    append([]IndexEntry(nil), s.index...),
	}
	s.manifest.Segments = append(s.manifest.Segments, meta)
	s.manifest.Records += s.segRecords
	if s.err = writeManifest(s.dir, s.manifest); s.err != nil {
		return
	}
	s.segNum++
	s.segRecords, s.segBytes, s.segMin, s.segMax = 0, 0, 0, 0
	s.index = s.index[:0]
	s.err = s.openSegment()
}

// writeManifest atomically replaces the catalog: write to a temp file, fsync
// it, rename over the manifest.
func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("archive: manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("archive: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("archive: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("archive: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("archive: manifest: %w", err)
	}
	return nil
}

// Flush drains the staging buffer to the active segment (no seal, no fsync)
// and returns the sink's sticky error, so live readers — the /archive/*
// endpoints polled mid-run — see every appended record.
func (s *Sink) Flush() error {
	if s == nil {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	if len(s.buf) > 0 {
		//air:allow(durable): Flush drains the frame encoder's own staging buffer of whole frames
		n, err := s.f.Write(s.buf)
		s.segBytes += int64(n)
		s.buf = s.buf[:0]
		if err != nil {
			s.err = fmt.Errorf("archive: write: %w", err)
		}
	}
	return s.err
}

// Close drains the staging buffer, seals the active segment if it holds any
// records (an empty one is removed), and closes the archive. The sink must
// not be used afterwards.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	if err := s.Flush(); err != nil {
		if s.f != nil {
			s.f.Close()
			s.f = nil
		}
		return err
	}
	if s.segRecords > 0 {
		s.seal()
		// seal reopens the next segment; remove the empty leftover.
		if s.err == nil {
			s.err = s.f.Close()
			s.f = nil
			if s.err == nil {
				s.err = os.Remove(filepath.Join(s.dir, segmentName(s.segNum)))
			}
		}
	} else if s.f != nil {
		name := s.f.Name()
		s.err = s.f.Close()
		s.f = nil
		if s.err == nil {
			s.err = os.Remove(name)
		}
	}
	return s.err
}

// Stats reports the writer's accounting for telemetry gauges. Unlike the
// rest of the sink it is safe to call concurrently with Emit: it reads the
// atomically published mirror of the counters.
func (s *Sink) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Segments: s.pub.segments.Load(),
		Bytes:    s.pub.bytes.Load(),
		Records:  s.pub.records.Load(),
	}
}
