package archive_test

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"testing"
	"time"

	"air/internal/archive"
	"air/internal/obs"
)

// The writer-kill test re-execs this test binary as a real archive writer
// process (TestHelperArchiveWriter) and SIGKILLs it mid-append, so crash
// recovery is exercised against a genuinely torn file — not a synthetic
// truncation — exactly like the fleet journal's process tests.

const helperDirEnv = "AIR_ARCHIVE_HELPER_DIR"

// scanEvents streams every record's event out of an open reader.
func scanEvents(rd *archive.Reader) ([]obs.Event, error) {
	var out []obs.Event
	err := rd.Scan(archive.Query{UntilTick: -1}, func(_ uint64, e obs.Event) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// TestHelperArchiveWriter is not a test: it is the body of the re-exec'd
// writer process. It appends the deterministic event stream one flushed
// frame at a time until the parent kills it.
func TestHelperArchiveWriter(t *testing.T) {
	dir := os.Getenv(helperDirEnv)
	if dir == "" {
		t.Skip("helper process body; spawned by TestWriterKillRecovery")
	}
	s, err := archive.Open(dir, archive.Options{SegmentRecords: 64})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, e := range genEvents(200000) {
		s.Emit(e)
		// Flush per record so bytes hit the file continuously: the kill then
		// lands at an arbitrary frame boundary — or inside one.
		if err := s.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	os.Exit(0)
}

// TestWriterKillRecovery kills a live writer process mid-append and verifies
// the archive recovers to an exact prefix of the deterministic stream: the
// read-only reader tolerates the torn tail, a reopened writer truncates it
// and appends cleanly, and no recovered record is corrupt or out of order.
func TestWriterKillRecovery(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperArchiveWriter$")
	cmd.Env = append(os.Environ(), helperDirEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the writer get a few segments deep before the kill, so recovery
	// crosses sealed-segment and manifest boundaries, not just frame ones.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rd, err := archive.OpenReader(dir); err == nil && rd.Records() >= 200 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("writer produced no readable records within the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill; the archive is what matters

	stream := genEvents(200000)

	// Read-only recovery: the reader sees a valid prefix of the stream.
	rd, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatalf("reader over killed archive: %v", err)
	}
	n := rd.Records()
	if n < 200 {
		t.Fatalf("recovered only %d records, want >= 200", n)
	}
	got, err := scanEvents(rd)
	if err != nil {
		t.Fatalf("scan over killed archive: %v", err)
	}
	if uint64(len(got)) != n {
		t.Fatalf("scan yielded %d records, Records() says %d", len(got), n)
	}
	if !reflect.DeepEqual(got, stream[:n]) {
		t.Fatal("recovered records are not an exact prefix of the written stream")
	}

	// Writer recovery: reopening truncates the torn tail and appends
	// continue the same stream seamlessly.
	s, err := archive.Open(dir, archive.Options{SegmentRecords: 64})
	if err != nil {
		t.Fatalf("reopen killed archive for append: %v", err)
	}
	base := s.Stats().Records
	if base != n {
		t.Fatalf("writer recovered %d records, reader saw %d", base, n)
	}
	for _, e := range stream[base : base+25] {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rd2, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := scanEvents(rd2)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got2)) != base+25 || !reflect.DeepEqual(got2, stream[:base+25]) {
		t.Fatalf("post-recovery append broke the stream: %d records", len(got2))
	}
}
