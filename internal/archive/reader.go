package archive

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"air/internal/obs"
)

// Reader opens an archive directory for queries. Sealed segments are taken
// from the manifest; any trailing unsealed segment is recovered read-only by
// frame validation (a torn tail is ignored, never an error), so a reader can
// inspect the archive of a run that crashed — or one that is still being
// written, up to its last buffer flush.
type Reader struct {
	dir     string
	segs    []segmentInfo
	records uint64 // total addressable records
}

type segmentInfo struct {
	meta   SegmentMeta
	sealed bool
}

// OpenReader opens dir for queries.
func OpenReader(dir string) (*Reader, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir}
	seq := uint64(1)
	for _, seg := range m.Segments {
		if seg.SeqStart != seq {
			return nil, fmt.Errorf("archive: manifest: segment %s starts at seq %d, want %d", seg.Name, seg.SeqStart, seq)
		}
		if _, err := os.Stat(filepath.Join(dir, seg.Name)); err != nil {
			return nil, fmt.Errorf("archive: sealed segment missing: %w", err)
		}
		r.segs = append(r.segs, segmentInfo{meta: seg, sealed: true})
		seq += seg.Records
	}
	r.records = m.Records
	// Recover the unsealed tail segment, if any.
	tail, err := scanSegment(dir, len(m.Segments)+1, seq)
	if err != nil {
		return nil, err
	}
	if tail != nil {
		r.segs = append(r.segs, *tail)
		r.records += tail.meta.Records
	}
	return r, nil
}

// scanSegment validates the post-manifest segment by frame, deriving the
// metadata the manifest would have held. Returns nil when the file does not
// exist or holds no valid record.
func scanSegment(dir string, num int, seqStart uint64) (*segmentInfo, error) {
	f, err := os.Open(filepath.Join(dir, segmentName(num)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("archive: open segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	meta := SegmentMeta{Name: segmentName(num), SeqStart: seqStart}
	var offset int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // torn write: no newline
		}
		rec, ferr := decodeFrame(line[:len(line)-1])
		if ferr != nil {
			break // torn or corrupt tail
		}
		if meta.Records == 0 {
			meta.MinTick = rec.Time
		}
		meta.MaxTick = rec.Time
		meta.Records++
		offset += int64(len(line))
	}
	meta.Bytes = offset
	if meta.Records == 0 {
		return nil, nil
	}
	return &segmentInfo{meta: meta}, nil
}

// Records returns the total number of addressable records (the archive's
// latest transaction seq).
func (r *Reader) Records() uint64 { return r.records }

// Segments returns the catalog the reader resolved: sealed segments plus the
// recovered tail.
func (r *Reader) Segments() []SegmentMeta {
	out := make([]SegmentMeta, len(r.segs))
	for i, s := range r.segs {
		out[i] = s.meta
	}
	return out
}

// Query selects records by both time axes and by kind.
type Query struct {
	// SinceTick/UntilTick bound valid time inclusively; UntilTick < 0 means
	// unbounded above (InTickRange is the shared predicate).
	SinceTick int64
	UntilTick int64
	// MaxSeq bounds transaction time: only records with seq <= MaxSeq
	// qualify. 0 means unbounded — "as of now".
	MaxSeq uint64
	// Kinds restricts the scan to the listed kinds; empty admits all.
	Kinds []obs.Kind
}

func (q Query) admitsKind(k obs.Kind) bool {
	if len(q.Kinds) == 0 {
		return true
	}
	for _, want := range q.Kinds {
		if k == want {
			return true
		}
	}
	return false
}

// Scan streams qualifying records in transaction order, calling fn with each
// record's seq and event. Valid time is nondecreasing across the stream, so
// the scan seeks past whole segments (and, via the sparse tick index, into
// the middle of one) to reach SinceTick, and stops at the first record past
// UntilTick or MaxSeq.
func (r *Reader) Scan(q Query, fn func(seq uint64, e obs.Event) error) error {
	for _, seg := range r.segs {
		if q.MaxSeq > 0 && seg.meta.SeqStart > q.MaxSeq {
			return nil
		}
		if q.UntilTick >= 0 && seg.meta.MinTick > q.UntilTick {
			return nil // ticks only grow from here
		}
		if seg.meta.MaxTick < q.SinceTick {
			continue // whole segment precedes the window
		}
		if err := r.scanOne(seg, q, fn); err != nil {
			if errors.Is(err, errStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// errStop terminates a scan early from inside a segment.
var errStop = errors.New("archive: stop scan")

func (r *Reader) scanOne(seg segmentInfo, q Query, fn func(seq uint64, e obs.Event) error) error {
	f, err := os.Open(filepath.Join(r.dir, seg.meta.Name))
	if err != nil {
		return fmt.Errorf("archive: scan: %w", err)
	}
	defer f.Close()
	seq := seg.meta.SeqStart
	// Seek via the sparse index: every record before an entry has a tick no
	// later than the entry's, so starting at the last entry whose tick is
	// below SinceTick skips only records outside the window.
	if q.SinceTick > seg.meta.MinTick && len(seg.meta.Index) > 0 {
		i := sort.Search(len(seg.meta.Index), func(i int) bool {
			return seg.meta.Index[i].Tick >= q.SinceTick
		})
		if i > 0 {
			ent := seg.meta.Index[i-1]
			if _, err := f.Seek(ent.Offset, 0); err != nil {
				return fmt.Errorf("archive: scan: %w", err)
			}
			seq = ent.Seq
		}
	}
	br := bufio.NewReader(f)
	for {
		if q.MaxSeq > 0 && seq > q.MaxSeq {
			return errStop
		}
		line, err := br.ReadBytes('\n')
		if err != nil {
			if seg.sealed && (len(line) > 0 || seq != seg.meta.SeqStart+seg.meta.Records) {
				return fmt.Errorf("archive: segment %s truncated at seq %d", seg.meta.Name, seq)
			}
			return nil // end of segment (or recovered tail boundary)
		}
		rec, ferr := decodeFrame(line[:len(line)-1])
		if ferr != nil {
			if seg.sealed {
				return fmt.Errorf("archive: segment %s seq %d: %w", seg.meta.Name, seq, ferr)
			}
			return nil // unsealed torn tail
		}
		if seq > seg.meta.SeqStart+seg.meta.Records-1 {
			return nil // recovered tail: past the validated prefix
		}
		if q.UntilTick >= 0 && rec.Time > q.UntilTick {
			return errStop
		}
		if rec.Time >= q.SinceTick && q.admitsKind(obs.KindFromString(rec.Kind)) {
			if err := fn(seq, rec.Event()); err != nil {
				return err
			}
		}
		seq++
	}
}

// Events collects a scan into a slice of (seq, event) pairs.
func (r *Reader) Events(q Query) ([]SeqEvent, error) {
	var out []SeqEvent
	err := r.Scan(q, func(seq uint64, e obs.Event) error {
		out = append(out, SeqEvent{Seq: seq, Event: e})
		return nil
	})
	return out, err
}

// SeqEvent pairs a record with its transaction seq.
type SeqEvent struct {
	Seq   uint64
	Event obs.Event
}

// HMEntry is the reconstructed Health Monitor belief about one partition:
// the last report it filed and how many it has filed in total.
type HMEntry struct {
	Code    string `json:"code,omitempty"`
	Level   string `json:"level,omitempty"`
	Action  string `json:"action,omitempty"`
	Tick    int64  `json:"t"`
	Reports uint64 `json:"reports"`
}

// State is the bitemporal as-of reconstruction: what the observability spine
// implied about the module at valid time AsOfTick, knowing only the records
// up to transaction seq AsOfSeq.
type State struct {
	AsOfTick int64  `json:"asOfTick"`
	AsOfSeq  uint64 `json:"asOfSeq"`
	// Events is the number of records folded; LastTick/LastSeq locate the
	// last one.
	Events   uint64 `json:"events"`
	LastTick int64  `json:"lastTick,omitempty"`
	LastSeq  uint64 `json:"lastSeq,omitempty"`
	// Schedule is the most recently requested module schedule ("" until the
	// first SCHEDULE_SWITCH request).
	Schedule string `json:"schedule,omitempty"`
	// Degraded is set between SCHEDULE_DEGRADE and SCHEDULE_RESTORE.
	Degraded bool `json:"degraded,omitempty"`
	// HM maps partition name → reconstructed Health Monitor table row.
	HM map[string]HMEntry `json:"hm,omitempty"`
	// Quarantined lists partitions inside a QUARANTINE_ENTER/EXIT bracket,
	// sorted.
	Quarantined []string `json:"quarantined,omitempty"`
}

// fold accumulates one event into the state. The kinds folded here define
// the as-of semantics: HM table from HM_REPORT, schedule mode from
// SCHEDULE_SWITCH/DEGRADE/RESTORE, quarantine set from the recovery
// brackets.
func (s *State) fold(seq uint64, e obs.Event, quarantined map[string]bool) {
	s.Events++
	s.LastTick, s.LastSeq = int64(e.Time), seq
	switch e.Kind {
	case obs.KindScheduleSwitch:
		s.Schedule = scheduleName(e.Detail)
	case obs.KindScheduleDegrade:
		s.Degraded = true
		s.Schedule = scheduleName(e.Detail)
	case obs.KindScheduleRestore:
		s.Degraded = false
		s.Schedule = scheduleName(e.Detail)
	case obs.KindHMReport:
		ent := s.HM[string(e.Partition)]
		ent.Code, ent.Level, ent.Action = e.Code, e.Level, e.Action
		ent.Tick = int64(e.Time)
		ent.Reports++
		if s.HM == nil {
			s.HM = map[string]HMEntry{}
		}
		s.HM[string(e.Partition)] = ent
	case obs.KindQuarantineEnter:
		quarantined[string(e.Partition)] = true
	case obs.KindQuarantineExit:
		delete(quarantined, string(e.Partition))
	}
}

// scheduleName recovers the target schedule from a schedule event's detail
// line ("requested schedule chi2", "degraded to schedule safe"): the last
// space-separated word, mirroring the timeline analyzer's parser.
func scheduleName(detail string) string {
	if i := strings.LastIndexByte(detail, ' '); i >= 0 {
		return detail[i+1:]
	}
	return ""
}

// AsOf reconstructs the module state at valid time asOfTick as known by
// transaction seq asOfSeq (0 = as of the latest record): a fold over every
// record with Time <= asOfTick and seq <= asOfSeq. This is the bitemporal
// query — rewinding asOfSeq answers "what did we believe before record R
// arrived?", rewinding asOfTick answers "what had happened by tick T?".
func (r *Reader) AsOf(asOfTick int64, asOfSeq uint64) (State, error) {
	st := State{AsOfTick: asOfTick, AsOfSeq: asOfSeq}
	quarantined := map[string]bool{}
	err := r.Scan(Query{UntilTick: asOfTick, MaxSeq: asOfSeq}, func(seq uint64, e obs.Event) error {
		st.fold(seq, e, quarantined)
		return nil
	})
	if err != nil {
		return st, err
	}
	for p := range quarantined { //air:allow(maprange): collected into a slice and sorted below
		st.Quarantined = append(st.Quarantined, p)
	}
	sort.Strings(st.Quarantined)
	return st, nil
}

// Divergence reports where two runs' histories split.
type Divergence struct {
	// Diverged is false when one stream is a prefix of the other and both
	// agree on every shared record — including the identical-stream case.
	Diverged bool `json:"diverged"`
	// Seq is the first transaction seq at which the runs disagree (or the
	// seq just past the shorter stream when one is a strict prefix).
	Seq uint64 `json:"seq,omitempty"`
	// Tick localizes the divergence in valid time: the earliest tick
	// mentioned by either run's first differing record.
	Tick int64 `json:"t,omitempty"`
	// A/B are the first differing records (nil past a stream's end).
	A *obs.Record `json:"a,omitempty"`
	B *obs.Record `json:"b,omitempty"`
	// RecordsA/RecordsB are the streams' total lengths.
	RecordsA uint64 `json:"recordsA"`
	RecordsB uint64 `json:"recordsB"`
}

// Diff walks two archives in lockstep transaction order and localizes the
// first divergence: the first seq whose records differ, and the valid-time
// tick that divergence speaks about. For a fault variant diffed against its
// fault-free twin this is the tick the injected fault first became
// observable on the spine.
func Diff(a, b *Reader) (Divergence, error) {
	d := Divergence{RecordsA: a.Records(), RecordsB: b.Records()}
	ca, err := a.cursor()
	if err != nil {
		return d, err
	}
	defer ca.close()
	cb, err := b.cursor()
	if err != nil {
		return d, err
	}
	defer cb.close()
	for seq := uint64(1); ; seq++ {
		ea, okA, err := ca.next()
		if err != nil {
			return d, err
		}
		eb, okB, err := cb.next()
		if err != nil {
			return d, err
		}
		switch {
		case !okA && !okB:
			return d, nil // identical
		case okA && okB && ea == eb:
			continue
		}
		d.Diverged = true
		d.Seq = seq
		if okA {
			ra := obs.ToRecord(ea)
			d.A = &ra
			d.Tick = ra.Time
		}
		if okB {
			rb := obs.ToRecord(eb)
			d.B = &rb
			if d.A == nil || rb.Time < d.Tick {
				d.Tick = rb.Time
			}
		}
		return d, nil
	}
}

// cursor is a pull iterator over an archive's record stream.
type cursor struct {
	r      *Reader
	segIdx int
	left   uint64 // records remaining in the open segment
	f      *os.File
	br     *bufio.Reader
}

func (r *Reader) cursor() (*cursor, error) {
	return &cursor{r: r}, nil
}

func (c *cursor) next() (obs.Event, bool, error) {
	var zero obs.Event
	for {
		if c.f == nil {
			if c.segIdx >= len(c.r.segs) {
				return zero, false, nil
			}
			seg := c.r.segs[c.segIdx]
			f, err := os.Open(filepath.Join(c.r.dir, seg.meta.Name))
			if err != nil {
				return zero, false, fmt.Errorf("archive: diff: %w", err)
			}
			c.f, c.br, c.left = f, bufio.NewReader(f), seg.meta.Records
		}
		if c.left == 0 {
			c.close()
			c.segIdx++
			continue
		}
		line, err := c.br.ReadBytes('\n')
		if err != nil {
			return zero, false, fmt.Errorf("archive: diff: segment %s: %w", c.r.segs[c.segIdx].meta.Name, err)
		}
		rec, ferr := decodeFrame(line[:len(line)-1])
		if ferr != nil {
			return zero, false, fmt.Errorf("archive: diff: segment %s: %w", c.r.segs[c.segIdx].meta.Name, ferr)
		}
		c.left--
		return rec.Event(), true, nil
	}
}

func (c *cursor) close() {
	if c.f != nil {
		c.f.Close()
		c.f, c.br = nil, nil
	}
}
