package archive

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"

	"air/internal/obs"
)

// Handler serves the archive query API over a root directory. The cmd
// composition mounts it next to the timeline telemetry handler, so one
// server answers live metrics and historical forensics:
//
//	GET /archive/asof?run=R&tick=T&seq=S   → State (bitemporal as-of)
//	GET /archive/range?run=R&since=A&until=B&kind=K&limit=N
//	                                       → [{seq, record}, ...]
//	GET /archive/diff?a=RA&b=RB            → Divergence
//
// run/a/b name archive directories relative to root ("" is root itself,
// aircampaignd uses "<campaign>/run-00012"); path escapes are rejected.
// Readers open per request, so queries always see the latest flush.
func Handler(root string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /archive/asof", func(w http.ResponseWriter, r *http.Request) {
		rd, ok := openRun(w, root, r.FormValue("run"))
		if !ok {
			return
		}
		tick, err := formInt(r, "tick", -1)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		seq, err := formInt(r, "seq", 0)
		if err != nil || seq < 0 {
			http.Error(w, "archive: bad seq", http.StatusBadRequest)
			return
		}
		st, err := rd.AsOf(tick, uint64(seq))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /archive/range", func(w http.ResponseWriter, r *http.Request) {
		rd, ok := openRun(w, root, r.FormValue("run"))
		if !ok {
			return
		}
		q := Query{UntilTick: -1}
		var err error
		if q.SinceTick, err = formInt(r, "since", 0); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if q.UntilTick, err = formInt(r, "until", -1); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, name := range strings.Split(r.FormValue("kind"), ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			k := obs.KindFromString(name)
			if k == 0 {
				http.Error(w, fmt.Sprintf("archive: unknown kind %q", name), http.StatusBadRequest)
				return
			}
			q.Kinds = append(q.Kinds, k)
		}
		limit, err := formInt(r, "limit", 10000)
		if err != nil || limit <= 0 {
			http.Error(w, "archive: bad limit", http.StatusBadRequest)
			return
		}
		type row struct {
			Seq    uint64     `json:"seq"`
			Record obs.Record `json:"record"`
		}
		rows := []row{}
		// errStop is Scan's own early-exit sentinel: it ends the walk and
		// surfaces as a nil error.
		err = rd.Scan(q, func(seq uint64, e obs.Event) error {
			rows = append(rows, row{Seq: seq, Record: obs.ToRecord(e)})
			if int64(len(rows)) >= limit {
				return errStop
			}
			return nil
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rows)
	})
	mux.HandleFunc("GET /archive/diff", func(w http.ResponseWriter, r *http.Request) {
		ra, ok := openRun(w, root, r.FormValue("a"))
		if !ok {
			return
		}
		rb, ok := openRun(w, root, r.FormValue("b"))
		if !ok {
			return
		}
		d, err := Diff(ra, rb)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, d)
	})
	return mux
}

// openRun resolves a run name under root, rejecting path escapes, and opens
// a reader; on failure it writes the HTTP error and returns ok=false.
func openRun(w http.ResponseWriter, root, run string) (*Reader, bool) {
	dir, err := resolveRun(root, run)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	rd, err := OpenReader(dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return nil, false
	}
	if len(rd.segs) == 0 {
		http.Error(w, fmt.Sprintf("archive: no records under %q", run), http.StatusNotFound)
		return nil, false
	}
	return rd, true
}

func resolveRun(root, run string) (string, error) {
	if run == "" {
		return root, nil
	}
	if filepath.IsAbs(run) || strings.Contains(run, "..") {
		return "", fmt.Errorf("archive: run %q escapes the archive root", run)
	}
	return filepath.Join(root, filepath.Clean(run)), nil
}

func formInt(r *http.Request, name string, def int64) (int64, error) {
	s := r.FormValue(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("archive: bad %s: %v", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
