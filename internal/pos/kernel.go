package pos

import (
	"errors"
	"fmt"

	"air/internal/model"
	"air/internal/obs"
	"air/internal/tick"
)

// Policy selects the process scheduling algorithm of a POS instance.
type Policy int

// Scheduling policies.
const (
	// PolicyPriorityPreemptive is the RTOS policy mandated by ARINC 653 and
	// formalised by eq. (14): highest priority first, oldest-ready first
	// among equals.
	PolicyPriorityPreemptive Policy = iota + 1
	// PolicyRoundRobin models a generic non-real-time guest OS (Sect. 2.5):
	// ready processes share the partition's windows in rotation,
	// disregarding priorities.
	PolicyRoundRobin
)

// String renders the policy.
func (p Policy) String() string {
	switch p {
	case PolicyPriorityPreemptive:
		return "priority-preemptive"
	case PolicyRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// DeadlineObserver receives deadline registration traffic. The AIR PAL
// implements this interface (Sect. 5.2): APEX primitives that start, delay,
// replenish or stop processes keep the PAL's deadline structures updated
// through it.
type DeadlineObserver interface {
	// SetDeadline registers or updates the absolute deadline of a process.
	SetDeadline(id ProcessID, name string, deadline tick.Ticks)
	// ClearDeadline removes a process's deadline registration.
	ClearDeadline(id ProcessID)
}

// nopObserver is used when no PAL is attached (unit tests, bare kernels).
type nopObserver struct{}

func (nopObserver) SetDeadline(ProcessID, string, tick.Ticks) {}
func (nopObserver) ClearDeadline(ProcessID)                   {}

// Kernel errors.
var (
	ErrNoSuchProcess    = errors.New("pos: no such process")
	ErrDuplicateName    = errors.New("pos: duplicate process name")
	ErrNotDormant       = errors.New("pos: process not dormant")
	ErrNotStarted       = errors.New("pos: process not started")
	ErrNotSuspended     = errors.New("pos: process not suspended")
	ErrAlreadySuspended = errors.New("pos: process already suspended")
	ErrNotWaiting       = errors.New("pos: process not waiting")
	ErrNotPeriodic      = errors.New("pos: process not periodic")
	ErrParavirtualized  = errors.New("pos: clock interrupt control denied by paravirtualization layer")
	ErrTooManyProcesses = errors.New("pos: process table full")
	// ErrArrivalTooSoon rejects a sporadic (re)start before the minimum
	// inter-arrival time elapsed — event overload protection, the paper's
	// Sect. 8 future-work item (iii).
	ErrArrivalTooSoon = errors.New("pos: sporadic inter-arrival bound not elapsed")
)

// Kernel is one POS instance: the process scheduler and process table of a
// single partition.
type Kernel struct {
	partition model.PartitionName
	policy    Policy
	now       func() tick.Ticks
	observer  DeadlineObserver

	procs    []*Process // index = ProcessID-1
	byName   map[string]ProcessID
	seq      uint64
	rrCursor int // round-robin rotation cursor
	maxProcs int

	// lockLevel implements ARINC 653 preemption locking: while > 0 the
	// running process is not preempted by higher-priority ready processes.
	lockLevel int
	running   ProcessID

	obs obs.Emitter
}

// Options configures a Kernel.
type Options struct {
	Partition model.PartitionName
	Policy    Policy
	// Now supplies current logical time.
	Now func() tick.Ticks
	// Observer receives deadline registrations; nil installs a no-op.
	Observer DeadlineObserver
	// MaxProcesses bounds the process table (0 = 256, a typical ARINC 653
	// partition limit).
	MaxProcesses int
	// Obs publishes process-level scheduling events (KindPreemption when a
	// running process loses the processor to a higher-priority heir) on the
	// module's observability spine. The zero Emitter discards.
	Obs obs.Emitter
}

// NewKernel creates a POS kernel.
func NewKernel(opts Options) *Kernel {
	if opts.Now == nil {
		opts.Now = func() tick.Ticks { return 0 }
	}
	if opts.Observer == nil {
		opts.Observer = nopObserver{}
	}
	if opts.Policy == 0 {
		opts.Policy = PolicyPriorityPreemptive
	}
	if opts.MaxProcesses == 0 {
		opts.MaxProcesses = 256
	}
	return &Kernel{
		partition: opts.Partition,
		policy:    opts.Policy,
		now:       opts.Now,
		observer:  opts.Observer,
		byName:    make(map[string]ProcessID),
		maxProcs:  opts.MaxProcesses,
		obs:       opts.Obs,
	}
}

// Partition returns the owning partition's name.
func (k *Kernel) Partition() model.PartitionName { return k.partition }

// Policy returns the scheduling policy.
func (k *Kernel) Policy() Policy { return k.policy }

// Create installs a new dormant process from its static attributes.
func (k *Kernel) Create(spec model.TaskSpec) (ProcessID, error) {
	if err := spec.Validate(); err != nil {
		return InvalidProcess, err
	}
	if _, exists := k.byName[spec.Name]; exists {
		return InvalidProcess, fmt.Errorf("%w: %s", ErrDuplicateName, spec.Name)
	}
	if len(k.procs) >= k.maxProcs {
		return InvalidProcess, ErrTooManyProcesses
	}
	id := ProcessID(len(k.procs) + 1)
	k.procs = append(k.procs, &Process{
		ID:              id,
		Spec:            spec,
		State:           model.StateDormant,
		CurrentPriority: spec.BasePriority,
	})
	k.byName[spec.Name] = id
	return id, nil
}

// Get returns the process with the given ID.
func (k *Kernel) Get(id ProcessID) (*Process, error) {
	if id <= 0 || int(id) > len(k.procs) {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchProcess, id)
	}
	return k.procs[id-1], nil
}

// Lookup returns the process with the given name.
func (k *Kernel) Lookup(name string) (*Process, error) {
	id, ok := k.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchProcess, name)
	}
	return k.procs[id-1], nil
}

// Processes returns the process table τ_m in creation order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, len(k.procs))
	copy(out, k.procs)
	return out
}

// Start makes a dormant process able to execute: attributes are
// reinitialised, the process enters the ready state, and — per Sect. 5.2 —
// its deadline time is set to current time plus time capacity and registered
// with the PAL.
func (k *Kernel) Start(id ProcessID) error {
	return k.startAt(id, 0)
}

// DelayedStart starts a process with a given delay: it is placed in the
// waiting state until the requested delay expires (Sect. 5.2). Its first
// deadline still counts from now.
func (k *Kernel) DelayedStart(id ProcessID, delay tick.Ticks) error {
	if delay < 0 {
		return fmt.Errorf("pos: negative delay %d", delay)
	}
	return k.startAt(id, delay)
}

func (k *Kernel) startAt(id ProcessID, delay tick.Ticks) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if p.State != model.StateDormant {
		return fmt.Errorf("%w: %s is %s", ErrNotDormant, p.Spec.Name, p.State)
	}
	now := k.now()
	// Sporadic enforcement (Sect. 3.3: for aperiodic/sporadic processes the
	// period "represents the lower bound for the time between consecutive
	// activations"): a restart arriving sooner is rejected, bounding event
	// overload.
	if !p.Spec.Periodic && p.Spec.Period > 0 && p.everStarted &&
		now+delay < p.lastArrival+p.Spec.Period {
		return fmt.Errorf("%w: %s arrived at %d, bound %d",
			ErrArrivalTooSoon, p.Spec.Name, now+delay, p.lastArrival+p.Spec.Period)
	}
	p.everStarted = true
	p.lastArrival = now + delay
	p.CurrentPriority = p.Spec.BasePriority
	p.Suspended = false
	p.TimedOut = false
	p.Started = true
	p.releaseBase = now + delay
	p.NextRelease = p.releaseBase
	if !p.Spec.Deadline.IsInfinite() {
		p.Deadline = now + delay + p.Spec.Deadline
		p.HasDeadline = true
		k.observer.SetDeadline(p.ID, p.Spec.Name, p.Deadline)
	} else {
		p.HasDeadline = false
	}
	if delay > 0 {
		p.State = model.StateWaiting
		p.WaitingOn = WaitDelay
		p.WakeAt = now + delay
	} else {
		k.makeReady(p)
		k.emitRelease(p, now)
	}
	return nil
}

// Stop puts a process in the dormant state and unregisters its deadline.
func (k *Kernel) Stop(id ProcessID) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	p.State = model.StateDormant
	p.WaitingOn = WaitNone
	p.Suspended = false
	p.Started = false
	if p.HasDeadline {
		p.HasDeadline = false
		k.observer.ClearDeadline(p.ID)
	}
	if k.running == id {
		k.running = InvalidProcess
	}
	return nil
}

// Suspend makes a started process ineligible until resumed. A running or
// ready process moves to waiting; a waiting process additionally gets the
// suspended overlay.
func (k *Kernel) Suspend(id ProcessID) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if !p.Started {
		return fmt.Errorf("%w: %s", ErrNotStarted, p.Spec.Name)
	}
	if p.Suspended {
		return fmt.Errorf("%w: %s", ErrAlreadySuspended, p.Spec.Name)
	}
	p.Suspended = true
	if p.Eligible() {
		p.State = model.StateWaiting
		p.WaitingOn = WaitSuspended
		p.WakeAt = tick.Infinity
		if k.running == id {
			k.running = InvalidProcess
		}
	}
	return nil
}

// Resume lifts the suspension; if the process was not also waiting on
// something else it becomes ready.
func (k *Kernel) Resume(id ProcessID) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if !p.Suspended {
		return fmt.Errorf("%w: %s", ErrNotSuspended, p.Spec.Name)
	}
	p.Suspended = false
	if p.State == model.StateWaiting && p.WaitingOn == WaitSuspended {
		k.makeReady(p)
	}
	return nil
}

// SetPriority changes the current priority p' of a started process.
func (k *Kernel) SetPriority(id ProcessID, prio model.Priority) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if !p.Started {
		return fmt.Errorf("%w: %s", ErrNotStarted, p.Spec.Name)
	}
	p.CurrentPriority = prio
	return nil
}

// Replenish postpones the process's deadline time to now + budget
// (Sect. 5.2) and re-registers it with the PAL.
func (k *Kernel) Replenish(id ProcessID, budget tick.Ticks) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if !p.Started {
		return fmt.Errorf("%w: %s", ErrNotStarted, p.Spec.Name)
	}
	if budget <= 0 {
		return fmt.Errorf("pos: non-positive replenish budget %d", budget)
	}
	if p.Spec.Deadline.IsInfinite() {
		return nil // no deadline to replenish
	}
	p.Deadline = k.now() + budget
	p.HasDeadline = true
	k.observer.SetDeadline(p.ID, p.Spec.Name, p.Deadline)
	return nil
}

// Block transitions the running/ready process into a wait of the given kind,
// optionally bounded by a timeout instant (tick.Infinity = unbounded). The
// APEX layer uses this for semaphores, events, buffers, blackboards and
// ports.
func (k *Kernel) Block(id ProcessID, kind WaitKind, wakeAt tick.Ticks) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if !p.Eligible() {
		return fmt.Errorf("pos: cannot block %s in state %s", p.Spec.Name, p.State)
	}
	p.State = model.StateWaiting
	p.WaitingOn = kind
	p.WakeAt = wakeAt
	p.TimedOut = false
	if k.running == id {
		k.running = InvalidProcess
	}
	return nil
}

// Wake transitions a waiting process back to ready because the awaited event
// occurred. A suspended process stays waiting under the suspension overlay.
func (k *Kernel) Wake(id ProcessID) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if p.State != model.StateWaiting {
		return fmt.Errorf("%w: %s is %s", ErrNotWaiting, p.Spec.Name, p.State)
	}
	if p.Suspended {
		p.WaitingOn = WaitSuspended
		p.WakeAt = tick.Infinity
		return nil
	}
	k.makeReady(p)
	return nil
}

// PeriodicWait suspends the process until its next release point (Sect. 5.2
// footnote: "for a periodic process the consecutive release points will be
// separated by the respective period"). On release, the caller (APEX) sets
// the new deadline via CompleteRelease.
func (k *Kernel) PeriodicWait(id ProcessID) error {
	p, err := k.Get(id)
	if err != nil {
		return err
	}
	if !p.Spec.Periodic {
		return fmt.Errorf("%w: %s", ErrNotPeriodic, p.Spec.Name)
	}
	if !p.Eligible() {
		return fmt.Errorf("pos: cannot periodic-wait %s in state %s", p.Spec.Name, p.State)
	}
	now := k.now()
	// The completing activation's nominal release point is the NextRelease
	// computed when it was released (releaseBase for the first activation):
	// publish the activation's response time before recomputing it.
	k.obs.Emit(obs.Event{Time: now, Kind: obs.KindProcessComplete,
		Partition: k.partition, Process: p.Spec.Name, Latency: now - p.NextRelease})
	// Next release strictly after now.
	elapsed := now - p.releaseBase
	n := elapsed/p.Spec.Period + 1
	p.NextRelease = p.releaseBase + n*p.Spec.Period
	p.State = model.StateWaiting
	p.WaitingOn = WaitPeriod
	p.WakeAt = p.NextRelease
	// The current activation completed: its deadline is met. The deadline
	// for the next activation — release point plus time capacity — is
	// registered now (Sect. 5.2 deadline maintenance), so a completed
	// activation can never fire a spurious miss while the process waits.
	if !p.Spec.Deadline.IsInfinite() {
		p.Deadline = p.NextRelease + p.Spec.Deadline
		p.HasDeadline = true
		k.observer.SetDeadline(p.ID, p.Spec.Name, p.Deadline)
	}
	if k.running == id {
		k.running = InvalidProcess
	}
	return nil
}

// ClockAnnounce advances the kernel's view of time to now: time-bounded
// waits that expired are resolved (delays and period releases wake normally;
// object waits wake with TimedOut set). It returns the processes released in
// this announcement so the APEX layer can update deadlines for periodic
// releases.
func (k *Kernel) ClockAnnounce(now tick.Ticks) []*Process {
	var released []*Process
	for _, p := range k.procs {
		if p.State != model.StateWaiting || p.Suspended {
			continue
		}
		if p.WakeAt.IsInfinite() || p.WakeAt > now {
			continue
		}
		switch p.WaitingOn {
		case WaitDelay:
			k.makeReady(p)
			k.emitRelease(p, now)
			released = append(released, p)
		case WaitPeriod:
			// Release point reached; the activation's deadline was already
			// registered at PeriodicWait time.
			k.makeReady(p)
			k.emitRelease(p, now)
			released = append(released, p)
		case WaitSuspended:
			// Unbounded; nothing to do (defensive: WakeAt is Infinity).
		default:
			// Object wait timed out.
			p.TimedOut = true
			k.makeReady(p)
			released = append(released, p)
		}
	}
	return released
}

// Heir selects the heir process per eq. (14): the highest-priority eligible
// process, ties broken by antiquity in the ready state; under round-robin,
// ready processes rotate. It returns false if Ready_m(t) is empty.
func (k *Kernel) Heir() (*Process, bool) {
	if k.lockLevel > 0 && k.running != InvalidProcess {
		if p := k.procs[k.running-1]; p.Eligible() {
			return p, true
		}
	}
	switch k.policy {
	case PolicyRoundRobin:
		return k.heirRoundRobin()
	default:
		return k.heirPriority()
	}
}

func (k *Kernel) heirPriority() (*Process, bool) {
	var best *Process
	for _, p := range k.procs {
		if !p.Eligible() {
			continue
		}
		if best == nil ||
			p.CurrentPriority < best.CurrentPriority ||
			(p.CurrentPriority == best.CurrentPriority && p.readySeq < best.readySeq) {
			best = p
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

func (k *Kernel) heirRoundRobin() (*Process, bool) {
	n := len(k.procs)
	if n == 0 {
		return nil, false
	}
	for i := 0; i < n; i++ {
		idx := (k.rrCursor + i) % n
		if k.procs[idx].Eligible() {
			k.rrCursor = (idx + 1) % n
			return k.procs[idx], true
		}
	}
	return nil, false
}

// Dispatch marks the heir as running and any previously running process as
// ready (preemption). It returns the dispatched process, or false when the
// partition is idle (no eligible process).
func (k *Kernel) Dispatch() (*Process, bool) {
	heir, ok := k.Heir()
	if !ok {
		if k.running != InvalidProcess {
			k.running = InvalidProcess
		}
		return nil, false
	}
	if k.running != InvalidProcess && k.running != heir.ID {
		prev := k.procs[k.running-1]
		if prev.State == model.StateRunning {
			prev.State = model.StateReady
			k.obs.Emit(obs.Event{Time: k.now(), Kind: obs.KindPreemption,
				Partition: k.partition, Process: prev.Spec.Name})
			// Antiquity is preserved: a preempted process keeps its
			// position among equal-priority peers.
		}
	}
	heir.State = model.StateRunning
	k.running = heir.ID
	return heir, true
}

// Running returns the currently running process, if any.
func (k *Kernel) Running() (*Process, bool) {
	if k.running == InvalidProcess {
		return nil, false
	}
	p := k.procs[k.running-1]
	if p.State != model.StateRunning {
		return nil, false
	}
	return p, true
}

// LockPreemption increments the preemption lock level (ARINC 653
// LOCK_PREEMPTION). While locked, Heir keeps returning the running process.
func (k *Kernel) LockPreemption() int {
	k.lockLevel++
	return k.lockLevel
}

// UnlockPreemption decrements the preemption lock level.
func (k *Kernel) UnlockPreemption() int {
	if k.lockLevel > 0 {
		k.lockLevel--
	}
	return k.lockLevel
}

// LockLevel returns the current preemption lock level.
func (k *Kernel) LockLevel() int { return k.lockLevel }

// DisableClockInterrupts models a guest OS attempting to disable or divert
// system clock interrupts. Per Sect. 2.5, such instructions are wrapped by
// low-level paravirtualized handlers: the attempt is always denied, so a
// non-real-time kernel "cannot undermine the overall time guarantees of the
// system".
func (k *Kernel) DisableClockInterrupts() error {
	return ErrParavirtualized
}

// ResetAll stops every process and clears scheduler state (partition cold
// start). Process table entries survive a warm start in ARINC 653; for cold
// starts the core layer recreates the kernel instead.
func (k *Kernel) ResetAll() {
	for _, p := range k.procs {
		p.State = model.StateDormant
		p.WaitingOn = WaitNone
		p.Suspended = false
		p.Started = false
		if p.HasDeadline {
			p.HasDeadline = false
			k.observer.ClearDeadline(p.ID)
		}
	}
	k.running = InvalidProcess
	k.lockLevel = 0
	k.rrCursor = 0
}

// emitRelease publishes a KindProcessRelease event for an activation that
// just became eligible. Latency carries the ticks remaining to the
// activation's absolute deadline (0 for deadline-free processes; negative
// when the deadline expired while the owning partition was off the
// processor), so the timeline analyzer can reconstruct the deadline instant
// without any allocation on this path.
func (k *Kernel) emitRelease(p *Process, now tick.Ticks) {
	var remaining tick.Ticks
	if p.HasDeadline {
		remaining = p.Deadline - now
	}
	k.obs.Emit(obs.Event{Time: now, Kind: obs.KindProcessRelease,
		Partition: k.partition, Process: p.Spec.Name, Latency: remaining})
}

func (k *Kernel) makeReady(p *Process) {
	p.State = model.StateReady
	p.WaitingOn = WaitNone
	p.WakeAt = 0
	k.seq++
	p.readySeq = k.seq
}
