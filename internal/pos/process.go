// Package pos implements the Partition Operating System kernel used inside
// each AIR partition (paper Sect. 2, 3.3): process management scoped to the
// partition, the preemptive priority-driven process scheduler of eqs.
// (14)–(15) with FIFO-within-priority ("processes are assumed to be sorted in
// decreasing order of antiquity in the ready state"), process states of
// eq. (13), delays, periodic release points, and a round-robin scheduling
// variant modelling generic non-real-time guest operating systems
// (Sect. 2.5).
package pos

import (
	"fmt"

	"air/internal/model"
	"air/internal/tick"
)

// ProcessID identifies a process within its partition. Process management
// scope is restricted to the partition (Sect. 3.3), so IDs are per-partition.
type ProcessID int

// InvalidProcess is the zero ProcessID, never assigned to a real process.
const InvalidProcess ProcessID = 0

// WaitKind says what a waiting process is waiting for — "a delay, a
// semaphore, a period, etc. — or another process resumes it" (Sect. 3.3).
type WaitKind int

// Wait kinds.
const (
	WaitNone WaitKind = iota
	WaitDelay
	WaitPeriod
	WaitSemaphore
	WaitEvent
	WaitBuffer
	WaitBlackboard
	WaitPort
	WaitSuspended
)

// String renders the wait kind.
func (k WaitKind) String() string {
	switch k {
	case WaitNone:
		return "none"
	case WaitDelay:
		return "delay"
	case WaitPeriod:
		return "period"
	case WaitSemaphore:
		return "semaphore"
	case WaitEvent:
		return "event"
	case WaitBuffer:
		return "buffer"
	case WaitBlackboard:
		return "blackboard"
	case WaitPort:
		return "port"
	case WaitSuspended:
		return "suspended"
	default:
		return fmt.Sprintf("WaitKind(%d)", int(k))
	}
}

// Process is the runtime image of one process τ_{m,q}: the static attributes
// of eq. (11) in Spec plus the status S_{m,q}(t) of eq. (12) — absolute
// deadline time D', current priority p', and state St.
type Process struct {
	ID   ProcessID
	Spec model.TaskSpec

	// State is St_{m,q}(t), eq. (13).
	State model.ProcessState
	// CurrentPriority is p'_{m,q}(t); it is reset to the base priority when
	// the process is (re)started.
	CurrentPriority model.Priority
	// Deadline is D'_{m,q}(t), the absolute deadline time; meaningful only
	// when HasDeadline.
	Deadline    tick.Ticks
	HasDeadline bool

	// readySeq implements "antiquity": a monotonically increasing sequence
	// number assigned each time the process enters the ready state, used to
	// break priority ties in favour of the oldest ready process.
	readySeq uint64

	// Wait bookkeeping (meaningful while State == StateWaiting).
	WaitingOn WaitKind
	// WakeAt is the instant a time-bounded wait expires; tick.Infinity for
	// unbounded waits.
	WakeAt tick.Ticks
	// TimedOut is set by the kernel when a wait ended by timeout rather
	// than by the awaited event.
	TimedOut bool
	// Suspended tracks the ARINC suspend/resume overlay: a suspended
	// process stays ineligible even if its awaited event occurs.
	Suspended bool

	// releaseBase anchors periodic release points: consecutive release
	// points are releaseBase + k·Period.
	releaseBase tick.Ticks
	// NextRelease is the next periodic release point.
	NextRelease tick.Ticks
	// Started reports whether the process has been started since creation
	// or its last stop.
	Started bool
	// everStarted and lastArrival implement sporadic inter-arrival
	// enforcement: for a non-periodic process with Period > 0, consecutive
	// starts must be at least Period apart.
	everStarted bool
	lastArrival tick.Ticks
}

// Eligible reports whether the process is schedulable (ready or running),
// i.e. a member of Ready_m(t), eq. (15).
func (p *Process) Eligible() bool {
	return p.State == model.StateReady || p.State == model.StateRunning
}

// String renders a compact process summary.
func (p *Process) String() string {
	return fmt.Sprintf("%s(id=%d, prio=%d, %s)",
		p.Spec.Name, p.ID, p.CurrentPriority, p.State)
}
