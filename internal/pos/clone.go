package pos

import (
	"air/internal/obs"
	"air/internal/tick"
)

// Clone returns a deep copy of the kernel for module snapshot/fork. The
// copy is rebound to the fork's clock, deadline observer (its PAL) and
// observability spine; every process table entry — including the private
// release bookkeeping (readySeq, releaseBase, lastArrival) that makes the
// scheduler's tie-breaking deterministic — is value-copied so the fork's
// POS-level scheduling decisions replay bit-exactly from the snapshot
// point.
func (k *Kernel) Clone(now func() tick.Ticks, observer DeadlineObserver, em obs.Emitter) *Kernel {
	c := *k
	c.now = now
	c.observer = observer
	if observer == nil {
		c.observer = nopObserver{}
	}
	c.obs = em
	c.procs = make([]*Process, len(k.procs))
	for i, p := range k.procs {
		cp := *p // Process holds only value fields (Spec is a value struct)
		c.procs[i] = &cp
	}
	c.byName = make(map[string]ProcessID, len(k.byName))
	for name, id := range k.byName { //air:allow(maprange): one-shot fork assembly off the hot path; order-insensitive copy
		c.byName[name] = id
	}
	return &c
}
