package pos

import (
	"errors"
	"testing"
	"testing/quick"

	"air/internal/model"
	"air/internal/tick"
)

type testClock struct{ now tick.Ticks }

func (c *testClock) fn() func() tick.Ticks { return func() tick.Ticks { return c.now } }

type recordingObserver struct {
	set     map[ProcessID]tick.Ticks
	cleared map[ProcessID]int
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{
		set:     make(map[ProcessID]tick.Ticks),
		cleared: make(map[ProcessID]int),
	}
}

func (o *recordingObserver) SetDeadline(id ProcessID, _ string, d tick.Ticks) { o.set[id] = d }
func (o *recordingObserver) ClearDeadline(id ProcessID)                       { o.cleared[id]++; delete(o.set, id) }

func newTestKernel(t *testing.T, clock *testClock) (*Kernel, *recordingObserver) {
	t.Helper()
	obs := newRecordingObserver()
	k := NewKernel(Options{
		Partition: "P1",
		Now:       clock.fn(),
		Observer:  obs,
	})
	return k, obs
}

func mustCreate(t *testing.T, k *Kernel, spec model.TaskSpec) ProcessID {
	t.Helper()
	id, err := k.Create(spec)
	if err != nil {
		t.Fatalf("Create(%s): %v", spec.Name, err)
	}
	return id
}

func periodicSpec(name string, period tick.Ticks, prio model.Priority) model.TaskSpec {
	return model.TaskSpec{
		Name: name, Period: period, Deadline: period,
		BasePriority: prio, WCET: 1, Periodic: true,
	}
}

func aperiodicSpec(name string, prio model.Priority) model.TaskSpec {
	return model.TaskSpec{
		Name: name, Deadline: tick.Infinity, BasePriority: prio, WCET: 1,
	}
}

func TestCreateAndLookup(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	id := mustCreate(t, k, periodicSpec("a", 100, 5))
	p, err := k.Get(id)
	if err != nil || p.Spec.Name != "a" {
		t.Fatalf("Get: %v %v", p, err)
	}
	if p.State != model.StateDormant {
		t.Errorf("new process state = %s, want dormant", p.State)
	}
	if _, err := k.Lookup("a"); err != nil {
		t.Errorf("Lookup(a): %v", err)
	}
	if _, err := k.Lookup("zz"); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("Lookup(zz) = %v", err)
	}
	if _, err := k.Get(99); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("Get(99) = %v", err)
	}
	if _, err := k.Create(periodicSpec("a", 50, 1)); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate create = %v", err)
	}
	if _, err := k.Create(model.TaskSpec{Name: "bad", Deadline: 0}); err == nil {
		t.Error("invalid spec accepted")
	}
	if got := len(k.Processes()); got != 1 {
		t.Errorf("Processes() len = %d", got)
	}
}

func TestProcessTableLimit(t *testing.T) {
	k := NewKernel(Options{Partition: "P", MaxProcesses: 1})
	mustCreate(t, k, aperiodicSpec("one", 1))
	if _, err := k.Create(aperiodicSpec("two", 1)); !errors.Is(err, ErrTooManyProcesses) {
		t.Errorf("overflow = %v", err)
	}
}

func TestStartSetsDeadlineAndRegisters(t *testing.T) {
	clock := &testClock{now: 100}
	k, obs := newTestKernel(t, clock)
	id := mustCreate(t, k, periodicSpec("a", 50, 5))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.State != model.StateReady {
		t.Errorf("state = %s, want ready", p.State)
	}
	if !p.HasDeadline || p.Deadline != 150 {
		t.Errorf("deadline = %d (has=%v), want 150", p.Deadline, p.HasDeadline)
	}
	if obs.set[id] != 150 {
		t.Errorf("observer deadline = %d, want 150", obs.set[id])
	}
	// Starting a non-dormant process fails.
	if err := k.Start(id); !errors.Is(err, ErrNotDormant) {
		t.Errorf("double start = %v", err)
	}
}

func TestStartInfiniteDeadlineNotRegistered(t *testing.T) {
	clock := &testClock{}
	k, obs := newTestKernel(t, clock)
	id := mustCreate(t, k, aperiodicSpec("bg", 9))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.HasDeadline {
		t.Error("infinite-deadline process must not carry a deadline")
	}
	if len(obs.set) != 0 {
		t.Error("observer must not receive a registration")
	}
}

func TestDelayedStart(t *testing.T) {
	clock := &testClock{now: 10}
	k, obs := newTestKernel(t, clock)
	id := mustCreate(t, k, periodicSpec("a", 100, 5))
	if err := k.DelayedStart(id, 40); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.State != model.StateWaiting || p.WaitingOn != WaitDelay || p.WakeAt != 50 {
		t.Fatalf("delayed start state: %s on %s at %d", p.State, p.WaitingOn, p.WakeAt)
	}
	// Deadline counts from release: now+delay+capacity = 10+40+100.
	if obs.set[id] != 150 {
		t.Errorf("deadline = %d, want 150", obs.set[id])
	}
	// Before expiry nothing wakes.
	clock.now = 49
	if rel := k.ClockAnnounce(49); len(rel) != 0 {
		t.Fatalf("woke early: %v", rel)
	}
	clock.now = 50
	rel := k.ClockAnnounce(50)
	if len(rel) != 1 || rel[0].ID != id {
		t.Fatalf("release = %v", rel)
	}
	if p.State != model.StateReady {
		t.Errorf("state after release = %s", p.State)
	}
	if err := k.DelayedStart(id, -1); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestStopClearsDeadline(t *testing.T) {
	clock := &testClock{}
	k, obs := newTestKernel(t, clock)
	id := mustCreate(t, k, periodicSpec("a", 100, 5))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	k.Dispatch()
	if err := k.Stop(id); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.State != model.StateDormant || p.HasDeadline {
		t.Errorf("after stop: %s hasDeadline=%v", p.State, p.HasDeadline)
	}
	if obs.cleared[id] != 1 {
		t.Errorf("observer cleared %d times, want 1", obs.cleared[id])
	}
	if _, ok := k.Running(); ok {
		t.Error("stopped process still running")
	}
}

// TestHeirSelection exercises eq. (14): highest priority wins; equal
// priorities resolve by antiquity in the ready state.
func TestHeirSelection(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	low := mustCreate(t, k, periodicSpec("low", 100, 20))
	hi := mustCreate(t, k, periodicSpec("hi", 100, 1))
	mid1 := mustCreate(t, k, periodicSpec("mid1", 100, 10))
	mid2 := mustCreate(t, k, periodicSpec("mid2", 100, 10))

	if _, ok := k.Heir(); ok {
		t.Fatal("empty ready set should have no heir")
	}
	for _, id := range []ProcessID{low, mid1, mid2} {
		if err := k.Start(id); err != nil {
			t.Fatal(err)
		}
	}
	h, ok := k.Heir()
	if !ok || h.ID != mid1 {
		t.Fatalf("heir = %v, want mid1 (oldest of equal top priority)", h)
	}
	if err := k.Start(hi); err != nil {
		t.Fatal(err)
	}
	h, _ = k.Heir()
	if h.ID != hi {
		t.Fatalf("heir = %v, want hi", h)
	}
	// Stop hi: mid1 again (older than mid2).
	if err := k.Stop(hi); err != nil {
		t.Fatal(err)
	}
	h, _ = k.Heir()
	if h.ID != mid1 {
		t.Fatalf("heir = %v, want mid1", h)
	}
	_ = low
}

func TestPreemptionPreservesAntiquity(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	a := mustCreate(t, k, periodicSpec("a", 100, 10))
	b := mustCreate(t, k, periodicSpec("b", 100, 10))
	hi := mustCreate(t, k, periodicSpec("hi", 100, 1))
	if err := k.Start(a); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(b); err != nil {
		t.Fatal(err)
	}
	h, _ := k.Dispatch()
	if h.ID != a {
		t.Fatalf("dispatched %v, want a", h)
	}
	// hi preempts a.
	if err := k.Start(hi); err != nil {
		t.Fatal(err)
	}
	h, _ = k.Dispatch()
	if h.ID != hi {
		t.Fatalf("dispatched %v, want hi", h)
	}
	pa, _ := k.Get(a)
	if pa.State != model.StateReady {
		t.Fatalf("preempted a state = %s", pa.State)
	}
	// hi finishes; a must win over b (antiquity preserved across
	// preemption).
	if err := k.Stop(hi); err != nil {
		t.Fatal(err)
	}
	h, _ = k.Dispatch()
	if h.ID != a {
		t.Fatalf("dispatched %v, want a (antiquity)", h)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	clock := &testClock{}
	k := NewKernel(Options{Partition: "LNX", Policy: PolicyRoundRobin, Now: clock.fn()})
	var ids []ProcessID
	for _, name := range []string{"a", "b", "c"} {
		id, err := k.Create(aperiodicSpec(name, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Start(id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Rotation must visit all three in turn regardless of (equal or not)
	// priorities.
	var got []ProcessID
	for i := 0; i < 6; i++ {
		h, ok := k.Dispatch()
		if !ok {
			t.Fatal("no heir")
		}
		got = append(got, h.ID)
		// Mark it back to ready to simulate quantum expiry.
		h.State = model.StateReady
	}
	want := []ProcessID{ids[0], ids[1], ids[2], ids[0], ids[1], ids[2]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	// With b blocked, rotation skips it.
	if err := k.Block(ids[1], WaitSemaphore, tick.Infinity); err != nil {
		t.Fatal(err)
	}
	seen := map[ProcessID]bool{}
	for i := 0; i < 4; i++ {
		h, ok := k.Dispatch()
		if !ok {
			t.Fatal("no heir")
		}
		seen[h.ID] = true
		h.State = model.StateReady
	}
	if seen[ids[1]] {
		t.Error("blocked process was dispatched")
	}
	if k.Policy() != PolicyRoundRobin {
		t.Error("Policy() wrong")
	}
}

func TestPeriodicWaitAndRelease(t *testing.T) {
	clock := &testClock{now: 0}
	k, obs := newTestKernel(t, clock)
	id := mustCreate(t, k, periodicSpec("a", 100, 5))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	k.Dispatch()
	// Completes its job at t=30; waits for next release at 100.
	clock.now = 30
	if err := k.PeriodicWait(id); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.State != model.StateWaiting || p.WaitingOn != WaitPeriod || p.WakeAt != 100 {
		t.Fatalf("periodic wait: %s on %s at %d", p.State, p.WaitingOn, p.WakeAt)
	}
	// The next activation's deadline (release + capacity = 200) is
	// registered already at wait time, so the met deadline of the completed
	// activation can never fire.
	if p.Deadline != 200 || obs.set[id] != 200 {
		t.Errorf("deadline = %d (observer %d), want 200 at wait time", p.Deadline, obs.set[id])
	}
	clock.now = 100
	rel := k.ClockAnnounce(100)
	if len(rel) != 1 {
		t.Fatalf("releases = %v", rel)
	}
	if p.Deadline != 200 || obs.set[id] != 200 {
		t.Errorf("deadline = %d (observer %d), want 200", p.Deadline, obs.set[id])
	}
	// Overrun case: the process keeps computing past its period (release
	// point already passed). Wait at t=230 → next release 300, not 200.
	k.Dispatch()
	clock.now = 230
	if err := k.PeriodicWait(id); err != nil {
		t.Fatal(err)
	}
	if p.WakeAt != 300 {
		t.Errorf("overrun next release = %d, want 300", p.WakeAt)
	}
	// Non-periodic process cannot periodic-wait.
	bg := mustCreate(t, k, aperiodicSpec("bg", 9))
	if err := k.Start(bg); err != nil {
		t.Fatal(err)
	}
	if err := k.PeriodicWait(bg); !errors.Is(err, ErrNotPeriodic) {
		t.Errorf("aperiodic periodic-wait = %v", err)
	}
}

func TestBlockWakeAndTimeout(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	id := mustCreate(t, k, aperiodicSpec("a", 5))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	// Wake path.
	if err := k.Block(id, WaitSemaphore, tick.Infinity); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.State != model.StateWaiting || p.WaitingOn != WaitSemaphore {
		t.Fatalf("blocked state: %s on %s", p.State, p.WaitingOn)
	}
	// Unbounded wait never times out.
	if rel := k.ClockAnnounce(1 << 40); len(rel) != 0 {
		t.Fatal("unbounded wait woke by clock")
	}
	if err := k.Wake(id); err != nil {
		t.Fatal(err)
	}
	if p.State != model.StateReady || p.TimedOut {
		t.Fatalf("after wake: %s timedOut=%v", p.State, p.TimedOut)
	}
	// Timeout path.
	clock.now = 100
	if err := k.Block(id, WaitEvent, 150); err != nil {
		t.Fatal(err)
	}
	rel := k.ClockAnnounce(150)
	if len(rel) != 1 || !p.TimedOut {
		t.Fatalf("timeout: releases=%v timedOut=%v", rel, p.TimedOut)
	}
	// Waking a non-waiting process errors.
	if err := k.Wake(id); !errors.Is(err, ErrNotWaiting) {
		t.Errorf("Wake ready = %v", err)
	}
	// Blocking a dormant process errors.
	if err := k.Stop(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Block(id, WaitEvent, tick.Infinity); err == nil {
		t.Error("blocked a dormant process")
	}
}

func TestSuspendResume(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	id := mustCreate(t, k, aperiodicSpec("a", 5))
	if err := k.Suspend(id); !errors.Is(err, ErrNotStarted) {
		t.Errorf("suspend dormant = %v", err)
	}
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Suspend(id); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.State != model.StateWaiting || p.WaitingOn != WaitSuspended {
		t.Fatalf("suspend state: %s on %s", p.State, p.WaitingOn)
	}
	if err := k.Suspend(id); !errors.Is(err, ErrAlreadySuspended) {
		t.Errorf("double suspend = %v", err)
	}
	if err := k.Resume(id); err != nil {
		t.Fatal(err)
	}
	if p.State != model.StateReady {
		t.Fatalf("after resume: %s", p.State)
	}
	if err := k.Resume(id); !errors.Is(err, ErrNotSuspended) {
		t.Errorf("double resume = %v", err)
	}
}

func TestSuspendOverlaysObjectWait(t *testing.T) {
	// A process suspended while waiting on a semaphore must not become
	// ready when the semaphore is signalled; only resume releases it.
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	id := mustCreate(t, k, aperiodicSpec("a", 5))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Block(id, WaitSemaphore, tick.Infinity); err != nil {
		t.Fatal(err)
	}
	if err := k.Suspend(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Wake(id); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.State != model.StateWaiting || p.WaitingOn != WaitSuspended {
		t.Fatalf("signalled while suspended: %s on %s", p.State, p.WaitingOn)
	}
	if err := k.Resume(id); err != nil {
		t.Fatal(err)
	}
	if p.State != model.StateReady {
		t.Fatalf("after resume: %s", p.State)
	}
}

func TestSetPriorityAffectsHeir(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	a := mustCreate(t, k, periodicSpec("a", 100, 10))
	b := mustCreate(t, k, periodicSpec("b", 100, 20))
	if err := k.Start(a); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(b); err != nil {
		t.Fatal(err)
	}
	if h, _ := k.Heir(); h.ID != a {
		t.Fatalf("heir = %v, want a", h)
	}
	if err := k.SetPriority(b, 1); err != nil {
		t.Fatal(err)
	}
	if h, _ := k.Heir(); h.ID != b {
		t.Fatalf("after boost heir = %v, want b", h)
	}
	// Base priority restored on restart.
	if err := k.Stop(b); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(b); err != nil {
		t.Fatal(err)
	}
	pb, _ := k.Get(b)
	if pb.CurrentPriority != 20 {
		t.Errorf("restart priority = %d, want base 20", pb.CurrentPriority)
	}
	dormant := mustCreate(t, k, aperiodicSpec("d", 9))
	if err := k.SetPriority(dormant, 1); !errors.Is(err, ErrNotStarted) {
		t.Errorf("set priority dormant = %v", err)
	}
}

func TestReplenish(t *testing.T) {
	clock := &testClock{now: 0}
	k, obs := newTestKernel(t, clock)
	id := mustCreate(t, k, periodicSpec("a", 100, 5))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	clock.now = 60
	if err := k.Replenish(id, 30); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Get(id)
	if p.Deadline != 90 || obs.set[id] != 90 {
		t.Errorf("replenished deadline = %d, want 90", p.Deadline)
	}
	if err := k.Replenish(id, 0); err == nil {
		t.Error("zero budget accepted")
	}
	// Infinite-deadline processes ignore replenish.
	bg := mustCreate(t, k, aperiodicSpec("bg", 9))
	if err := k.Start(bg); err != nil {
		t.Fatal(err)
	}
	if err := k.Replenish(bg, 10); err != nil {
		t.Fatal(err)
	}
	pbg, _ := k.Get(bg)
	if pbg.HasDeadline {
		t.Error("replenish must not create a deadline for deadline-free process")
	}
	// Dormant processes cannot replenish.
	d := mustCreate(t, k, periodicSpec("d", 100, 5))
	if err := k.Replenish(d, 10); !errors.Is(err, ErrNotStarted) {
		t.Errorf("replenish dormant = %v", err)
	}
}

func TestPreemptionLock(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	low := mustCreate(t, k, periodicSpec("low", 100, 20))
	hi := mustCreate(t, k, periodicSpec("hi", 100, 1))
	if err := k.Start(low); err != nil {
		t.Fatal(err)
	}
	k.Dispatch()
	if lvl := k.LockPreemption(); lvl != 1 {
		t.Fatalf("lock level = %d", lvl)
	}
	if err := k.Start(hi); err != nil {
		t.Fatal(err)
	}
	if h, _ := k.Heir(); h.ID != low {
		t.Fatalf("locked heir = %v, want low", h)
	}
	if lvl := k.UnlockPreemption(); lvl != 0 {
		t.Fatalf("unlock level = %d", lvl)
	}
	if h, _ := k.Heir(); h.ID != hi {
		t.Fatalf("unlocked heir = %v, want hi", h)
	}
	if k.UnlockPreemption() != 0 {
		t.Error("unlock below zero")
	}
	if k.LockLevel() != 0 {
		t.Error("LockLevel() wrong")
	}
}

func TestParavirtualizedClockProtection(t *testing.T) {
	k := NewKernel(Options{Partition: "LNX", Policy: PolicyRoundRobin})
	if err := k.DisableClockInterrupts(); !errors.Is(err, ErrParavirtualized) {
		t.Errorf("DisableClockInterrupts = %v, want ErrParavirtualized", err)
	}
}

func TestResetAll(t *testing.T) {
	clock := &testClock{}
	k, obs := newTestKernel(t, clock)
	a := mustCreate(t, k, periodicSpec("a", 100, 5))
	b := mustCreate(t, k, periodicSpec("b", 100, 6))
	if err := k.Start(a); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(b); err != nil {
		t.Fatal(err)
	}
	k.Dispatch()
	k.LockPreemption()
	k.ResetAll()
	for _, id := range []ProcessID{a, b} {
		p, _ := k.Get(id)
		if p.State != model.StateDormant || p.HasDeadline {
			t.Errorf("process %d after reset: %s hasDeadline=%v", id, p.State, p.HasDeadline)
		}
	}
	if len(obs.set) != 0 {
		t.Error("observer deadlines not cleared on reset")
	}
	if _, ok := k.Running(); ok {
		t.Error("running survivor after reset")
	}
	if k.LockLevel() != 0 {
		t.Error("lock level survived reset")
	}
	// Processes can be started again after reset.
	if err := k.Start(a); err != nil {
		t.Errorf("restart after reset: %v", err)
	}
}

func TestRunningAccessor(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	if _, ok := k.Running(); ok {
		t.Error("fresh kernel has running process")
	}
	id := mustCreate(t, k, aperiodicSpec("a", 1))
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	h, ok := k.Dispatch()
	if !ok || h.ID != id {
		t.Fatalf("Dispatch = %v %v", h, ok)
	}
	r, ok := k.Running()
	if !ok || r.ID != id {
		t.Fatalf("Running = %v %v", r, ok)
	}
}

func TestStringers(t *testing.T) {
	for kind, want := range map[WaitKind]string{
		WaitNone: "none", WaitDelay: "delay", WaitPeriod: "period",
		WaitSemaphore: "semaphore", WaitEvent: "event", WaitBuffer: "buffer",
		WaitBlackboard: "blackboard", WaitPort: "port", WaitSuspended: "suspended",
		WaitKind(99): "WaitKind(99)"} {
		if kind.String() != want {
			t.Errorf("WaitKind(%d).String() = %q, want %q", kind, kind.String(), want)
		}
	}
	for p, want := range map[Policy]string{
		PolicyPriorityPreemptive: "priority-preemptive",
		PolicyRoundRobin:         "round-robin",
		Policy(0):                "Policy(0)"} {
		if p.String() != want {
			t.Errorf("Policy.String() = %q, want %q", p.String(), want)
		}
	}
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	id := mustCreate(t, k, aperiodicSpec("a", 3))
	p, _ := k.Get(id)
	if s := p.String(); s == "" {
		t.Error("Process.String() empty")
	}
	if k.Partition() != "P1" {
		t.Error("Partition() wrong")
	}
}

// Property: the heir, whenever one exists, is always an eligible process
// with minimal (priority, readySeq) among eligible processes — eq. (14).
func TestHeirMinimalityProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		clock := &testClock{}
		k := NewKernel(Options{Partition: "P", Now: clock.fn()})
		var ids []ProcessID
		for i := 0; i < 8; i++ {
			id, err := k.Create(aperiodicSpec(
				string(rune('a'+i)), model.Priority(i%4)))
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		for _, op := range ops {
			id := ids[int(op)%len(ids)]
			p, _ := k.Get(id)
			clock.now++
			switch (op / 8) % 4 {
			case 0:
				if p.State == model.StateDormant {
					_ = k.Start(id)
				}
			case 1:
				_ = k.Stop(id)
			case 2:
				if p.Eligible() {
					_ = k.Block(id, WaitSemaphore, tick.Infinity)
				}
			case 3:
				if p.State == model.StateWaiting && !p.Suspended {
					_ = k.Wake(id)
				}
			}
			// Invariant check after each op.
			h, ok := k.Heir()
			var best *Process
			for _, q := range k.Processes() {
				if !q.Eligible() {
					continue
				}
				if best == nil || q.CurrentPriority < best.CurrentPriority ||
					(q.CurrentPriority == best.CurrentPriority && q.readySeq < best.readySeq) {
					best = q
				}
			}
			if (best == nil) != !ok {
				return false
			}
			if best != nil && h.ID != best.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSporadicInterArrivalEnforcement: a non-periodic process with a
// positive period (the lower bound on inter-activation time, Sect. 3.3)
// cannot be restarted faster than that bound — event overload protection.
func TestSporadicInterArrivalEnforcement(t *testing.T) {
	clock := &testClock{}
	k, _ := newTestKernel(t, clock)
	id := mustCreate(t, k, model.TaskSpec{
		Name: "sporadic", Period: 50, Deadline: 40, BasePriority: 3, WCET: 10,
	})
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Stop(id); err != nil {
		t.Fatal(err)
	}
	// Re-arrival before the bound is rejected.
	clock.now = 30
	if err := k.Start(id); !errors.Is(err, ErrArrivalTooSoon) {
		t.Fatalf("early restart = %v, want ErrArrivalTooSoon", err)
	}
	// At the bound it is accepted.
	clock.now = 50
	if err := k.Start(id); err != nil {
		t.Fatalf("restart at bound = %v", err)
	}
	// Delayed start counts the release instant, not the call instant.
	if err := k.Stop(id); err != nil {
		t.Fatal(err)
	}
	clock.now = 60
	if err := k.DelayedStart(id, 10); !errors.Is(err, ErrArrivalTooSoon) {
		t.Fatalf("delayed release at 70 < bound 100 = %v", err)
	}
	if err := k.DelayedStart(id, 40); err != nil {
		t.Fatalf("delayed release at bound = %v", err)
	}
	// Plain aperiodic processes (Period 0) restart freely.
	bg := mustCreate(t, k, aperiodicSpec("bg", 9))
	if err := k.Start(bg); err != nil {
		t.Fatal(err)
	}
	if err := k.Stop(bg); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(bg); err != nil {
		t.Fatalf("aperiodic restart = %v", err)
	}
}
