package hm

import (
	"air/internal/model"
	"air/internal/obs"
	"air/internal/tick"
)

// Clone returns a deep copy of the monitor for module snapshot/fork,
// rebound to the fork's clock and observability spine. Escalation counters,
// the reported-code tally and the event log are copied so the fork's HM
// decisions (e.g. restart-storm stop thresholds) continue exactly where the
// parent's left off. The Table values themselves are shared: they are
// lookup-only after installation, and SetProcessTable replaces whole table
// references rather than mutating entries, so sharing is safe. The parent
// is locked for the duration of the copy, making concurrent forks of one
// snapshot safe.
func (m *Monitor) Clone(now func() tick.Ticks, em obs.Emitter) *Monitor {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &Monitor{
		now:      now,
		module:   m.module,
		counters: make(map[counterKey]int, len(m.counters)),
		reported: make(map[ErrorCode]uint64, len(m.reported)),
		maxLog:   m.maxLog,
		handlers: make(map[model.PartitionName]bool, len(m.handlers)),
		obs:      em,
	}
	if m.partition != nil {
		c.partition = make(map[model.PartitionName]Table, len(m.partition))
		for p, t := range m.partition { //air:allow(maprange): one-shot fork assembly off the hot path; order-insensitive copy
			c.partition[p] = t
		}
	}
	if m.process != nil {
		c.process = make(map[model.PartitionName]Table, len(m.process))
		for p, t := range m.process { //air:allow(maprange): one-shot fork assembly off the hot path; order-insensitive copy
			c.process[p] = t
		}
	}
	//air:allow(maprange): one-shot fork assembly off the hot path.
	for k, v := range m.counters {
		c.counters[k] = v
	}
	//air:allow(maprange): one-shot fork assembly off the hot path.
	for k, v := range m.reported {
		c.reported[k] = v
	}
	//air:allow(maprange): one-shot fork assembly off the hot path.
	for k, v := range m.handlers {
		c.handlers[k] = v
	}
	c.events = append([]Event(nil), m.events...)
	return c
}
