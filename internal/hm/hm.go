// Package hm implements the AIR Health Monitor (paper Sect. 2.4 and 5): it
// handles hardware and software errors — deadline misses, memory protection
// violations, application errors — isolating each error within its domain of
// occurrence. Process-level errors cause the application error handler to be
// invoked; partition-level errors trigger a response action defined at system
// integration time; module-level errors may stop or reinitialise the system.
package hm

import (
	"fmt"
	"sync"

	"air/internal/model"
	"air/internal/obs"
	"air/internal/tick"
)

// ErrorCode identifies a detected error condition, following the ARINC 653
// health-monitoring error classification.
type ErrorCode int

// Error codes. ErrDeadlineMissed is the code raised by the process deadline
// violation monitoring mechanism of Sect. 5.
const (
	ErrDeadlineMissed ErrorCode = iota + 1
	ErrApplicationError
	ErrNumericError
	ErrIllegalRequest
	ErrStackOverflow
	ErrMemoryViolation
	ErrHardwareFault
	ErrPowerFail
	ErrConfigError
	// ErrPartitionHang is raised by the kernel's liveness watchdog when a
	// partition consumes its processor windows without any process making
	// progress (completing or blocking) — a hang the deadline monitoring of
	// Sect. 5 cannot see because no deadline-carrying process ever yields.
	ErrPartitionHang
)

// String renders the error code in ARINC 653 spelling.
func (c ErrorCode) String() string {
	switch c {
	case ErrDeadlineMissed:
		return "DEADLINE_MISSED"
	case ErrApplicationError:
		return "APPLICATION_ERROR"
	case ErrNumericError:
		return "NUMERIC_ERROR"
	case ErrIllegalRequest:
		return "ILLEGAL_REQUEST"
	case ErrStackOverflow:
		return "STACK_OVERFLOW"
	case ErrMemoryViolation:
		return "MEMORY_VIOLATION"
	case ErrHardwareFault:
		return "HARDWARE_FAULT"
	case ErrPowerFail:
		return "POWER_FAIL"
	case ErrConfigError:
		return "CONFIG_ERROR"
	case ErrPartitionHang:
		return "PARTITION_HANG"
	default:
		return fmt.Sprintf("ErrorCode(%d)", int(c))
	}
}

// Level is the error level: the domain the error impacts and therefore the
// domain in which it must be contained.
type Level int

// Error levels per ARINC 653.
const (
	LevelProcess Level = iota + 1
	LevelPartition
	LevelModule
)

// String renders the level.
func (l Level) String() string {
	switch l {
	case LevelProcess:
		return "PROCESS"
	case LevelPartition:
		return "PARTITION"
	case LevelModule:
		return "MODULE"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Action is a recovery action, covering the possibilities the paper lists in
// Sect. 5 for deadline violations and the partition/module responses of
// ARINC 653.
type Action int

// Recovery actions.
const (
	// ActionIgnore logs the error but takes no recovery action.
	ActionIgnore Action = iota + 1
	// ActionLogThreshold logs the error a configured number of times before
	// escalating to the Escalation action.
	ActionLogThreshold
	// ActionInvokeHandler invokes the partition's application error
	// handler; if none exists, the Escalation action applies.
	ActionInvokeHandler
	// ActionStopProcess stops the faulty process, assuming the partition
	// will detect this and recover.
	ActionStopProcess
	// ActionRestartProcess stops the faulty process and reinitialises it
	// from the entry address.
	ActionRestartProcess
	// ActionWarmStartPartition restarts the partition in warmStart mode.
	ActionWarmStartPartition
	// ActionColdStartPartition restarts the partition in coldStart mode.
	ActionColdStartPartition
	// ActionStopPartition shuts the partition down (idle mode).
	ActionStopPartition
	// ActionResetModule reinitialises the entire system.
	ActionResetModule
	// ActionShutdownModule stops the entire system.
	ActionShutdownModule
)

// String renders the action.
func (a Action) String() string {
	switch a {
	case ActionIgnore:
		return "IGNORE"
	case ActionLogThreshold:
		return "LOG_THRESHOLD"
	case ActionInvokeHandler:
		return "INVOKE_HANDLER"
	case ActionStopProcess:
		return "STOP_PROCESS"
	case ActionRestartProcess:
		return "RESTART_PROCESS"
	case ActionWarmStartPartition:
		return "WARM_START_PARTITION"
	case ActionColdStartPartition:
		return "COLD_START_PARTITION"
	case ActionStopPartition:
		return "STOP_PARTITION"
	case ActionResetModule:
		return "RESET_MODULE"
	case ActionShutdownModule:
		return "SHUTDOWN_MODULE"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule configures the response to one error code at one level.
type Rule struct {
	Action Action
	// Threshold applies to ActionLogThreshold: the number of occurrences
	// logged before Escalation is applied.
	Threshold int
	// Escalation is the action applied once Threshold is exceeded, or when
	// ActionInvokeHandler finds no handler installed.
	Escalation Action
}

// Table maps error codes to rules for one level of one containment domain.
type Table map[ErrorCode]Rule

// Event is one health-monitoring log record.
type Event struct {
	Time      tick.Ticks
	Code      ErrorCode
	Level     Level
	Partition model.PartitionName
	Process   string // empty for partition/module level errors
	Message   string
	Action    Action // the action that was decided
}

// String renders the event as a log line.
func (e Event) String() string {
	who := string(e.Partition)
	if e.Process != "" {
		who += "/" + e.Process
	}
	return fmt.Sprintf("[%6d] HM %s level=%s at=%s action=%s %s",
		e.Time, e.Code, e.Level, who, e.Action, e.Message)
}

// Decision is what the monitor resolved for a reported error: the action the
// kernel must carry out.
type Decision struct {
	Action Action
	Event  Event
}

// Config configures a Monitor.
type Config struct {
	// Now supplies the current logical time for event stamping.
	Now func() tick.Ticks
	// ModuleTable handles module-level errors. Missing codes default to
	// ActionShutdownModule (fail-stop).
	ModuleTable Table
	// PartitionTables handles partition-level errors per partition.
	// Missing codes default to ActionColdStartPartition.
	PartitionTables map[model.PartitionName]Table
	// ProcessTables handles process-level errors per partition (the default
	// when no application error handler is installed, and the rule lookup
	// that decides whether a handler is consulted at all). Missing codes
	// default to ActionInvokeHandler escalating to ActionStopProcess.
	ProcessTables map[model.PartitionName]Table
	// MaxLog bounds the in-memory event log, retaining the most recent
	// records. 0 applies DefaultMaxLog so a monitor never grows without
	// bound under a sustained fault storm; negative disables the bound
	// (appropriate only for short-lived diagnostic runs).
	MaxLog int
	// Obs publishes every recorded event on the module's observability
	// spine as a structured KindHMReport record (code/level/action). The
	// zero Emitter discards, so standalone monitors need no spine.
	Obs obs.Emitter
}

// Monitor is the AIR Health Monitor instance for a module.
type Monitor struct {
	mu  sync.Mutex
	now func() tick.Ticks
	//air:guard(mu)
	module Table
	//air:guard(mu)
	partition map[model.PartitionName]Table
	//air:guard(mu)
	process map[model.PartitionName]Table
	//air:guard(mu)
	counters map[counterKey]int
	//air:guard(mu)
	reported map[ErrorCode]uint64
	//air:guard(mu)
	events []Event
	maxLog int
	//air:guard(mu)
	handlers map[model.PartitionName]bool // error handler installed?
	obs      obs.Emitter
}

type counterKey struct {
	partition model.PartitionName
	process   string
	code      ErrorCode
	level     Level
}

// DefaultMaxLog is the event-log bound applied when Config.MaxLog is zero:
// large enough to retain every record of any bounded scenario, small enough
// that a restart storm sustained for millions of ticks cannot exhaust
// memory through the log.
const DefaultMaxLog = 4096

// New creates a Monitor. A nil Now defaults to a constant-zero clock, which
// is only appropriate in tests.
func New(cfg Config) *Monitor {
	now := cfg.Now
	if now == nil {
		now = func() tick.Ticks { return 0 }
	}
	switch {
	case cfg.MaxLog == 0:
		cfg.MaxLog = DefaultMaxLog
	case cfg.MaxLog < 0:
		cfg.MaxLog = 0 // explicit opt-out: unbounded
	}
	return &Monitor{
		now:       now,
		module:    cfg.ModuleTable,
		partition: cfg.PartitionTables,
		process:   cfg.ProcessTables,
		counters:  make(map[counterKey]int),
		reported:  make(map[ErrorCode]uint64),
		maxLog:    cfg.MaxLog,
		handlers:  make(map[model.PartitionName]bool),
		obs:       cfg.Obs,
	}
}

// AttachObs installs the spine emitter after construction (multicore
// configurations build the shared monitor before the shared spine's core
// emitters exist).
func (m *Monitor) AttachObs(em obs.Emitter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs = em
}

// SetPartitionTable installs or replaces the partition-level rule table for
// one partition. Used by multicore configurations, where per-core modules
// register their partitions with the shared monitor after construction.
func (m *Monitor) SetPartitionTable(p model.PartitionName, t Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.partition == nil {
		m.partition = make(map[model.PartitionName]Table)
	}
	m.partition[p] = t
}

// SetProcessTable installs or replaces the process-level rule table for one
// partition.
func (m *Monitor) SetProcessTable(p model.PartitionName, t Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.process == nil {
		m.process = make(map[model.PartitionName]Table)
	}
	m.process[p] = t
}

// SetHandlerInstalled records whether partition p currently has an
// application error handler (APEX CREATE_ERROR_HANDLER).
func (m *Monitor) SetHandlerInstalled(p model.PartitionName, installed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[p] = installed
}

// HandlerInstalled reports whether partition p has an error handler.
func (m *Monitor) HandlerInstalled(p model.PartitionName) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.handlers[p]
}

// ReportProcess reports a process-level error (e.g. a deadline miss detected
// by the PAL, Sect. 5). The returned decision tells the kernel what to do:
// invoke the error handler, stop/restart the process, or escalate.
func (m *Monitor) ReportProcess(p model.PartitionName, process string, code ErrorCode, msg string) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	rule := m.lookup(m.process[p], code, Rule{
		Action:     ActionInvokeHandler,
		Escalation: ActionStopProcess,
	})
	action := m.resolve(rule, counterKey{p, process, code, LevelProcess}, m.handlers[p])
	return m.record(Event{
		Time: m.now(), Code: code, Level: LevelProcess,
		Partition: p, Process: process, Message: msg, Action: action,
	})
}

// ReportPartition reports a partition-level error (e.g. a memory protection
// violation attributed to the partition domain).
func (m *Monitor) ReportPartition(p model.PartitionName, code ErrorCode, msg string) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	rule := m.lookup(m.partition[p], code, Rule{Action: ActionColdStartPartition})
	action := m.resolve(rule, counterKey{p, "", code, LevelPartition}, false)
	return m.record(Event{
		Time: m.now(), Code: code, Level: LevelPartition,
		Partition: p, Message: msg, Action: action,
	})
}

// ReportModule reports a module-level error (e.g. a hardware fault).
func (m *Monitor) ReportModule(code ErrorCode, msg string) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	rule := m.lookup(m.module, code, Rule{Action: ActionShutdownModule})
	action := m.resolve(rule, counterKey{"", "", code, LevelModule}, false)
	return m.record(Event{
		Time: m.now(), Code: code, Level: LevelModule,
		Message: msg, Action: action,
	})
}

func (m *Monitor) lookup(t Table, code ErrorCode, def Rule) Rule {
	if t != nil {
		if r, ok := t[code]; ok {
			return r
		}
	}
	return def
}

// resolve applies threshold and handler-availability logic to a rule
// (m.mu held).
//
//air:locked(mu)
func (m *Monitor) resolve(rule Rule, key counterKey, handlerInstalled bool) Action {
	action := rule.Action
	if action == ActionLogThreshold {
		m.counters[key]++
		if m.counters[key] <= rule.Threshold {
			return ActionIgnore
		}
		action = rule.Escalation
		if action == 0 {
			action = ActionIgnore
		}
	}
	if action == ActionInvokeHandler && !handlerInstalled {
		action = rule.Escalation
		if action == 0 {
			action = ActionStopProcess
		}
	}
	return action
}

// record logs the decided event, bumps the reported counter and publishes
// the record on the spine (m.mu held).
//
//air:locked(mu)
func (m *Monitor) record(e Event) Decision {
	m.reported[e.Code]++
	m.events = append(m.events, e)
	if m.maxLog > 0 && len(m.events) > m.maxLog {
		m.events = m.events[len(m.events)-m.maxLog:]
	}
	// The code/level/action strings are constant per enum value, so this
	// publication allocates nothing on the hot path.
	m.obs.Emit(obs.Event{
		Time:      e.Time,
		Kind:      obs.KindHMReport,
		Partition: e.Partition,
		Process:   e.Process,
		Detail:    e.Message,
		Code:      e.Code.String(),
		Level:     e.Level.String(),
		Action:    e.Action.String(),
	})
	return Decision{Action: e.Action, Event: e}
}

// Events returns a copy of the event log.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// EventsFor returns the logged events for one partition.
func (m *Monitor) EventsFor(p model.PartitionName) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, e := range m.events {
		if e.Partition == p {
			out = append(out, e)
		}
	}
	return out
}

// Reported returns the monotonic total of reports recorded with the given
// code over the monitor's lifetime. Unlike Count it is not bounded by the
// MaxLog retention window, so long fault storms cannot make it undercount;
// campaign aggregation reads miss totals through it.
func (m *Monitor) Reported(code ErrorCode) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reported[code]
}

// Count returns the number of logged events with the given code — bounded
// by the MaxLog retention window; use Reported for an exact lifetime total.
func (m *Monitor) Count(code ErrorCode) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if e.Code == code {
			n++
		}
	}
	return n
}

// Reset clears the event log and escalation counters (used on module reset).
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = nil
	m.counters = make(map[counterKey]int)
	m.reported = make(map[ErrorCode]uint64)
}

// ResetPartition clears the escalation counters of one partition's process-
// and partition-level rules. The kernel calls it when the partition cold
// starts: a cold start reinitialises the partition from scratch, so stale
// LogThreshold state must not survive to instantly re-escalate the first
// error of the fresh incarnation. The event log is untouched — it is the
// module-wide record of what happened.
func (m *Monitor) ResetPartition(p model.PartitionName) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.counters { //air:allow(maprange): each matching counter is deleted independently; order-insensitive
		if k.partition == p && (k.level == LevelProcess || k.level == LevelPartition) {
			delete(m.counters, k)
		}
	}
}
