package hm

import (
	"strings"
	"testing"

	"air/internal/model"
	"air/internal/tick"
)

func newTestMonitor(tables Config) *Monitor {
	var now tick.Ticks
	tables.Now = func() tick.Ticks { now++; return now }
	return New(tables)
}

func TestProcessErrorDefaultsToHandlerThenStop(t *testing.T) {
	m := newTestMonitor(Config{})
	// No handler installed: default rule escalates to STOP_PROCESS.
	d := m.ReportProcess("P1", "faulty", ErrDeadlineMissed, "missed")
	if d.Action != ActionStopProcess {
		t.Errorf("no handler: action = %s, want STOP_PROCESS", d.Action)
	}
	// With a handler installed the handler is invoked.
	m.SetHandlerInstalled("P1", true)
	if !m.HandlerInstalled("P1") {
		t.Fatal("handler should be installed")
	}
	d = m.ReportProcess("P1", "faulty", ErrDeadlineMissed, "missed")
	if d.Action != ActionInvokeHandler {
		t.Errorf("with handler: action = %s, want INVOKE_HANDLER", d.Action)
	}
}

func TestProcessTableRuleOverridesDefault(t *testing.T) {
	m := newTestMonitor(Config{
		ProcessTables: map[model.PartitionName]Table{
			"P1": {ErrDeadlineMissed: Rule{Action: ActionRestartProcess}},
		},
	})
	d := m.ReportProcess("P1", "x", ErrDeadlineMissed, "")
	if d.Action != ActionRestartProcess {
		t.Errorf("action = %s, want RESTART_PROCESS", d.Action)
	}
	// Another partition still uses the default.
	d = m.ReportProcess("P2", "x", ErrDeadlineMissed, "")
	if d.Action != ActionStopProcess {
		t.Errorf("P2 action = %s, want STOP_PROCESS default", d.Action)
	}
}

func TestLogThresholdEscalation(t *testing.T) {
	// Paper Sect. 5: "logging the error a certain number of times before
	// acting upon it".
	m := newTestMonitor(Config{
		ProcessTables: map[model.PartitionName]Table{
			"P1": {ErrDeadlineMissed: Rule{
				Action:     ActionLogThreshold,
				Threshold:  3,
				Escalation: ActionStopProcess,
			}},
		},
	})
	for i := 0; i < 3; i++ {
		d := m.ReportProcess("P1", "x", ErrDeadlineMissed, "")
		if d.Action != ActionIgnore {
			t.Fatalf("occurrence %d: action = %s, want IGNORE", i+1, d.Action)
		}
	}
	d := m.ReportProcess("P1", "x", ErrDeadlineMissed, "")
	if d.Action != ActionStopProcess {
		t.Errorf("4th occurrence: action = %s, want STOP_PROCESS", d.Action)
	}
	// Counters are per (partition, process, code): a different process has
	// its own budget.
	d = m.ReportProcess("P1", "y", ErrDeadlineMissed, "")
	if d.Action != ActionIgnore {
		t.Errorf("fresh process: action = %s, want IGNORE", d.Action)
	}
}

func TestLogThresholdWithoutEscalationDefaultsToIgnore(t *testing.T) {
	m := newTestMonitor(Config{
		ProcessTables: map[model.PartitionName]Table{
			"P1": {ErrApplicationError: Rule{Action: ActionLogThreshold, Threshold: 0}},
		},
	})
	d := m.ReportProcess("P1", "x", ErrApplicationError, "")
	if d.Action != ActionIgnore {
		t.Errorf("action = %s, want IGNORE", d.Action)
	}
}

func TestPartitionErrorDefaultsToColdStart(t *testing.T) {
	m := newTestMonitor(Config{})
	d := m.ReportPartition("P1", ErrMemoryViolation, "write outside space")
	if d.Action != ActionColdStartPartition {
		t.Errorf("action = %s, want COLD_START_PARTITION", d.Action)
	}
}

func TestPartitionTableRule(t *testing.T) {
	m := newTestMonitor(Config{
		PartitionTables: map[model.PartitionName]Table{
			"P1": {ErrMemoryViolation: Rule{Action: ActionStopPartition}},
		},
	})
	d := m.ReportPartition("P1", ErrMemoryViolation, "")
	if d.Action != ActionStopPartition {
		t.Errorf("action = %s, want STOP_PARTITION", d.Action)
	}
}

func TestModuleErrorDefaultsToShutdown(t *testing.T) {
	m := newTestMonitor(Config{})
	d := m.ReportModule(ErrHardwareFault, "bus parity")
	if d.Action != ActionShutdownModule {
		t.Errorf("action = %s, want SHUTDOWN_MODULE", d.Action)
	}
	m2 := newTestMonitor(Config{
		ModuleTable: Table{ErrHardwareFault: Rule{Action: ActionResetModule}},
	})
	if d := m2.ReportModule(ErrHardwareFault, ""); d.Action != ActionResetModule {
		t.Errorf("action = %s, want RESET_MODULE", d.Action)
	}
}

func TestEventLog(t *testing.T) {
	m := newTestMonitor(Config{})
	m.ReportProcess("P1", "a", ErrDeadlineMissed, "m1")
	m.ReportPartition("P2", ErrMemoryViolation, "m2")
	m.ReportModule(ErrPowerFail, "m3")

	events := m.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Level != LevelProcess || events[1].Level != LevelPartition ||
		events[2].Level != LevelModule {
		t.Errorf("event levels wrong: %v", events)
	}
	// Timestamps strictly increase with the test clock.
	if !(events[0].Time < events[1].Time && events[1].Time < events[2].Time) {
		t.Errorf("timestamps not increasing: %v", events)
	}
	if got := m.EventsFor("P1"); len(got) != 1 || got[0].Process != "a" {
		t.Errorf("EventsFor(P1) = %v", got)
	}
	if m.Count(ErrDeadlineMissed) != 1 || m.Count(ErrConfigError) != 0 {
		t.Error("Count broken")
	}

	m.Reset()
	if len(m.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestEventLogBounded(t *testing.T) {
	m := newTestMonitor(Config{MaxLog: 2})
	m.ReportModule(ErrPowerFail, "1")
	m.ReportModule(ErrPowerFail, "2")
	m.ReportModule(ErrPowerFail, "3")
	events := m.Events()
	if len(events) != 2 {
		t.Fatalf("log length = %d, want 2", len(events))
	}
	if events[0].Message != "2" || events[1].Message != "3" {
		t.Errorf("oldest event should be evicted: %v", events)
	}
}

func TestResetPartitionClearsEscalationCounters(t *testing.T) {
	// Regression: LogThreshold counters used to survive a partition cold
	// start (only a module Reset cleared them), so the fresh incarnation's
	// first error escalated immediately.
	rule := Rule{Action: ActionLogThreshold, Threshold: 2, Escalation: ActionStopProcess}
	m := newTestMonitor(Config{
		ProcessTables: map[model.PartitionName]Table{
			"P1": {ErrDeadlineMissed: rule},
			"P2": {ErrDeadlineMissed: rule},
		},
		PartitionTables: map[model.PartitionName]Table{
			"P1": {ErrMemoryViolation: {Action: ActionLogThreshold, Threshold: 1,
				Escalation: ActionColdStartPartition}},
		},
	})
	// Exhaust P1's process threshold and reach its partition threshold.
	for i := 0; i < 3; i++ {
		m.ReportProcess("P1", "x", ErrDeadlineMissed, "")
	}
	m.ReportPartition("P1", ErrMemoryViolation, "")
	// Burn one of P2's two logged strikes so cross-partition state exists.
	m.ReportProcess("P2", "x", ErrDeadlineMissed, "")

	m.ResetPartition("P1")

	// P1 starts from a clean slate at both levels.
	if d := m.ReportProcess("P1", "x", ErrDeadlineMissed, ""); d.Action != ActionIgnore {
		t.Errorf("P1 process counter not cleared: action = %s, want IGNORE", d.Action)
	}
	if d := m.ReportPartition("P1", ErrMemoryViolation, ""); d.Action != ActionIgnore {
		t.Errorf("P1 partition counter not cleared: action = %s, want IGNORE", d.Action)
	}
	// P2's accumulated strike is untouched: one more logs, the next
	// escalates.
	if d := m.ReportProcess("P2", "x", ErrDeadlineMissed, ""); d.Action != ActionIgnore {
		t.Errorf("P2 second strike: action = %s, want IGNORE", d.Action)
	}
	if d := m.ReportProcess("P2", "x", ErrDeadlineMissed, ""); d.Action != ActionStopProcess {
		t.Errorf("P2 over threshold: action = %s, want STOP_PROCESS", d.Action)
	}
	// The event log survives a partition reset (module-wide record).
	if len(m.Events()) == 0 {
		t.Error("ResetPartition must not clear the event log")
	}
}

func TestDefaultMaxLogBoundsEventLog(t *testing.T) {
	// Regression: MaxLog 0 used to mean "unbounded", so monitors built with
	// a zero config grew without limit under a fault storm.
	m := newTestMonitor(Config{})
	for i := 0; i < DefaultMaxLog+100; i++ {
		m.ReportModule(ErrPowerFail, "storm")
	}
	if n := len(m.Events()); n != DefaultMaxLog {
		t.Errorf("log length = %d, want DefaultMaxLog (%d)", n, DefaultMaxLog)
	}
	// Negative MaxLog is the explicit unbounded opt-out.
	u := newTestMonitor(Config{MaxLog: -1})
	for i := 0; i < DefaultMaxLog+100; i++ {
		u.ReportModule(ErrPowerFail, "storm")
	}
	if n := len(u.Events()); n != DefaultMaxLog+100 {
		t.Errorf("unbounded log length = %d, want %d", n, DefaultMaxLog+100)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 42, Code: ErrDeadlineMissed, Level: LevelProcess,
		Partition: "P1", Process: "faulty", Message: "late", Action: ActionStopProcess}
	s := e.String()
	for _, want := range []string{"42", "DEADLINE_MISSED", "PROCESS", "P1/faulty", "STOP_PROCESS", "late"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestStringers(t *testing.T) {
	codes := map[ErrorCode]string{
		ErrDeadlineMissed: "DEADLINE_MISSED", ErrApplicationError: "APPLICATION_ERROR",
		ErrNumericError: "NUMERIC_ERROR", ErrIllegalRequest: "ILLEGAL_REQUEST",
		ErrStackOverflow: "STACK_OVERFLOW", ErrMemoryViolation: "MEMORY_VIOLATION",
		ErrHardwareFault: "HARDWARE_FAULT", ErrPowerFail: "POWER_FAIL",
		ErrConfigError: "CONFIG_ERROR", ErrPartitionHang: "PARTITION_HANG",
		ErrorCode(0): "ErrorCode(0)",
	}
	for code, want := range codes {
		if code.String() != want {
			t.Errorf("%d.String() = %q, want %q", code, code.String(), want)
		}
	}
	levels := map[Level]string{
		LevelProcess: "PROCESS", LevelPartition: "PARTITION",
		LevelModule: "MODULE", Level(0): "Level(0)",
	}
	for l, want := range levels {
		if l.String() != want {
			t.Errorf("Level %d.String() = %q, want %q", l, l.String(), want)
		}
	}
	actions := map[Action]string{
		ActionIgnore: "IGNORE", ActionLogThreshold: "LOG_THRESHOLD",
		ActionInvokeHandler: "INVOKE_HANDLER", ActionStopProcess: "STOP_PROCESS",
		ActionRestartProcess:     "RESTART_PROCESS",
		ActionWarmStartPartition: "WARM_START_PARTITION",
		ActionColdStartPartition: "COLD_START_PARTITION",
		ActionStopPartition:      "STOP_PARTITION", ActionResetModule: "RESET_MODULE",
		ActionShutdownModule: "SHUTDOWN_MODULE", Action(0): "Action(0)",
	}
	for a, want := range actions {
		if a.String() != want {
			t.Errorf("Action %d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestDefaultClock(t *testing.T) {
	m := New(Config{})
	d := m.ReportModule(ErrPowerFail, "")
	if d.Event.Time != 0 {
		t.Errorf("default clock should stamp 0, got %d", d.Event.Time)
	}
}
