package recovery

import (
	"air/internal/model"
	"air/internal/tick"
)

// Clone returns a deep copy of the engine for module snapshot/fork,
// rebound to the fork's clock, spine emitter and kernel hooks (the parent's
// hooks close over the parent module and must not leak into the fork). All
// arbitration state — sliding restart/failure windows, backoff exponents,
// pending deferred restarts, quarantine episodes and the degradation-ladder
// position — is copied so the fork's recovery decisions continue exactly
// where the parent's left off.
func (e *Engine) Clone(opts Options) *Engine {
	c := &Engine{
		policy: e.policy,
		now:    opts.Now,
		obs:    opts.Obs,
		hooks:  opts.Hooks,
		byName: make(map[model.PartitionName]*partState, len(e.parts)),
		ladder: append([]Rung(nil), e.ladder...),
		deg:    e.deg,
	}
	for _, st := range e.parts {
		cp := *st
		cp.restarts = append([]tick.Ticks(nil), st.restarts...)
		cp.failures = append([]tick.Ticks(nil), st.failures...)
		c.parts = append(c.parts, &cp)
		c.byName[cp.name] = &cp
	}
	return c
}
