package recovery

import (
	"strings"
	"testing"

	"air/internal/model"
	"air/internal/obs"
	"air/internal/tick"
)

// harness wires an engine to a fake clock, a collecting spine and recording
// hooks.
type harness struct {
	now      tick.Ticks
	bus      *obs.Bus
	events   *collector
	restarts []string // "P1@40:reason"
	switches []string // schedule names requested
	current  string   // name returned by the ScheduleName hook
	engine   *Engine
}

type collector struct{ events []obs.Event }

func (c *collector) Emit(e obs.Event) { c.events = append(c.events, e) }

func (c *collector) kinds(k obs.Kind) []obs.Event {
	var out []obs.Event
	for _, e := range c.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func newHarness(t *testing.T, p Policy, partitions ...model.PartitionName) *harness {
	t.Helper()
	if len(partitions) == 0 {
		partitions = []model.PartitionName{"P1", "P2"}
	}
	h := &harness{bus: obs.NewBus(), events: &collector{}, current: "nominal"}
	h.bus.Attach(h.events)
	h.engine = NewEngine(p, Options{
		Now: func() tick.Ticks { return h.now },
		Obs: obs.NewEmitter(h.bus, 0),
		Hooks: Hooks{
			Restart: func(p model.PartitionName, mode model.OperatingMode, reason string, occupancy int) {
				h.restarts = append(h.restarts, string(p)+":"+reason)
			},
			SwitchSchedule: func(name string) bool {
				h.switches = append(h.switches, name)
				h.current = name
				return true
			},
			ScheduleName: func() string { return h.current },
		},
		Partitions: partitions,
	})
	return h
}

func TestBudgetGrantsThenDefersWithDoublingBackoff(t *testing.T) {
	h := newHarness(t, Policy{
		Default: Budget{MaxRestarts: 2, Window: 100, BackoffBase: 10, BackoffMax: 35},
	})
	e := h.engine

	// Two restarts fit the budget; occupancy counts up.
	for i, want := range []int{1, 2} {
		h.now = tick.Ticks(i)
		d := e.RequestRestart("P1", model.ModeColdStart)
		if d.Verdict != VerdictAllow || d.Occupancy != want {
			t.Fatalf("grant %d: got %v occupancy %d, want allow/%d", i, d.Verdict, d.Occupancy, want)
		}
	}
	// The third exceeds the budget: deferred by BackoffBase.
	h.now = 2
	d := e.RequestRestart("P1", model.ModeWarmStart)
	if d.Verdict != VerdictDefer || d.ResumeAt != 12 {
		t.Fatalf("over budget: got %v resumeAt %d, want defer/12", d.Verdict, d.ResumeAt)
	}
	if e.StatusOf("P1") != StatusDeferred {
		t.Fatalf("status = %v, want deferred", e.StatusOf("P1"))
	}
	// A second request while deferred reports the same resume time.
	if d2 := e.RequestRestart("P1", model.ModeWarmStart); d2.Verdict != VerdictDefer || d2.ResumeAt != 12 {
		t.Fatalf("while deferred: got %v resumeAt %d", d2.Verdict, d2.ResumeAt)
	}
	// OnTick before the resume time does nothing; at it, the engine executes
	// the restart through the hook with the requested mode preserved.
	e.OnTick(11)
	if len(h.restarts) != 0 {
		t.Fatalf("restart executed early: %v", h.restarts)
	}
	e.OnTick(12)
	if len(h.restarts) != 1 || !strings.HasPrefix(h.restarts[0], "P1:") {
		t.Fatalf("deferred restart not executed: %v", h.restarts)
	}
	// Still over budget immediately after: the next deferral doubles.
	h.now = 13
	d = e.RequestRestart("P1", model.ModeColdStart)
	if d.Verdict != VerdictDefer || d.ResumeAt != 13+20 {
		t.Fatalf("second deferral: got %v resumeAt %d, want defer/33", d.Verdict, d.ResumeAt)
	}
	e.OnTick(33)
	// Third deferral would be 40 but BackoffMax caps it at 35.
	h.now = 34
	d = e.RequestRestart("P1", model.ModeColdStart)
	if d.Verdict != VerdictDefer || d.ResumeAt != 34+35 {
		t.Fatalf("capped deferral: got %v resumeAt %d, want defer/69", d.Verdict, d.ResumeAt)
	}
	// The deferral events carry the delays on the spine.
	defs := h.events.kinds(obs.KindRestartDeferred)
	if len(defs) != 3 || defs[0].Latency != 10 || defs[1].Latency != 20 || defs[2].Latency != 35 {
		t.Fatalf("deferral events = %+v", defs)
	}
	// Once the window slides past the early grants, budget headroom returns
	// and the deferral streak resets.
	e.OnTick(69)
	h.now = 300
	d = e.RequestRestart("P1", model.ModeColdStart)
	if d.Verdict != VerdictAllow || d.Occupancy != 1 {
		t.Fatalf("after window slid: got %v occupancy %d, want allow/1", d.Verdict, d.Occupancy)
	}
}

func TestBudgetIsPerPartition(t *testing.T) {
	h := newHarness(t, Policy{
		Default: Budget{MaxRestarts: 1, Window: 100},
		Budgets: map[model.PartitionName]Budget{
			"P2": {MaxRestarts: 3, Window: 100},
		},
	})
	e := h.engine
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictAllow {
		t.Fatalf("P1 first: %v", d.Verdict)
	}
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictDefer {
		t.Fatalf("P1 second should defer: %v", d.Verdict)
	}
	// P2's override allows three.
	for i := 0; i < 3; i++ {
		if d := e.RequestRestart("P2", model.ModeColdStart); d.Verdict != VerdictAllow {
			t.Fatalf("P2 grant %d: %v", i, d.Verdict)
		}
	}
	if d := e.RequestRestart("P2", model.ModeColdStart); d.Verdict != VerdictDefer {
		t.Fatalf("P2 fourth should defer: %v", d.Verdict)
	}
}

func TestQuarantineHalfOpenProbeAndRecovery(t *testing.T) {
	h := newHarness(t, Policy{
		Quarantine: Quarantine{
			Failures: 3, FailureWindow: 50,
			Cooldown: 100, CooldownMax: 400, ProbeTicks: 30,
		},
	})
	e := h.engine

	// Initial restart grants (no failure history yet).
	h.now = 0
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictAllow {
		t.Fatalf("initial: %v", d.Verdict)
	}
	// Three rapid re-requests are three failed recoveries: the third trips
	// the breaker.
	h.now = 10
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictAllow {
		t.Fatalf("failure 1 should still grant: %v", d.Verdict)
	}
	h.now = 20
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictAllow {
		t.Fatalf("failure 2 should still grant: %v", d.Verdict)
	}
	h.now = 30
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictQuarantine {
		t.Fatalf("failure 3 should quarantine: %v", d.Verdict)
	}
	if e.StatusOf("P1") != StatusQuarantined {
		t.Fatalf("status = %v", e.StatusOf("P1"))
	}
	if got := e.Quarantined(); len(got) != 1 || got[0] != "P1" {
		t.Fatalf("Quarantined() = %v", got)
	}
	// Requests during quarantine stay swallowed.
	h.now = 50
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictQuarantine {
		t.Fatalf("during quarantine: %v", d.Verdict)
	}
	// Cooldown elapses at 130: the engine launches a half-open probe.
	e.OnTick(129)
	if len(h.restarts) != 0 {
		t.Fatalf("probe too early: %v", h.restarts)
	}
	e.OnTick(130)
	if len(h.restarts) != 1 || h.restarts[0] != "P1:half-open probe" {
		t.Fatalf("probe restart = %v", h.restarts)
	}
	// The probe faults at 140: back to quarantine with a doubled cooldown.
	h.now = 140
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictQuarantine {
		t.Fatalf("probe failure: %v", d.Verdict)
	}
	// Second probe at 140+200; it stays healthy for ProbeTicks.
	e.OnTick(340)
	if len(h.restarts) != 2 {
		t.Fatalf("second probe missing: %v", h.restarts)
	}
	e.OnTick(369)
	if e.StatusOf("P1") != StatusHalfOpen {
		t.Fatalf("probe should still be half-open, got %v", e.StatusOf("P1"))
	}
	e.OnTick(370)
	if e.StatusOf("P1") != StatusNormal {
		t.Fatalf("breaker should close, got %v", e.StatusOf("P1"))
	}
	// MTTR spans the whole episode: quarantined at 30, lifted at 370.
	exits := h.events.kinds(obs.KindQuarantineExit)
	if len(exits) != 1 || exits[0].Latency != 340 {
		t.Fatalf("exit events = %+v", exits)
	}
	if enters := h.events.kinds(obs.KindQuarantineEnter); len(enters) != 2 {
		t.Fatalf("expected 2 enter events (initial + failed probe), got %+v", enters)
	}
}

func TestDegradationLadderAndRestore(t *testing.T) {
	h := newHarness(t, Policy{
		Quarantine: Quarantine{
			Failures: 1, FailureWindow: 50, Cooldown: 100, ProbeTicks: 10,
		},
		Degradation: Degradation{
			Ladder:       []Rung{{Quarantined: 2, Schedule: "safe2"}, {Quarantined: 1, Schedule: "safe1"}},
			RestoreAfter: 40,
		},
	})
	e := h.engine

	// Quarantine P1: first rung activates, nominal schedule captured.
	h.now = 0
	e.RequestRestart("P1", model.ModeColdStart)
	h.now = 10
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictQuarantine {
		t.Fatalf("P1: %v", d.Verdict)
	}
	if !e.Degraded() || len(h.switches) != 1 || h.switches[0] != "safe1" {
		t.Fatalf("first rung: degraded=%v switches=%v", e.Degraded(), h.switches)
	}
	// Quarantine P2 too: the deeper rung takes over.
	h.now = 20
	e.RequestRestart("P2", model.ModeColdStart)
	h.now = 30
	if d := e.RequestRestart("P2", model.ModeColdStart); d.Verdict != VerdictQuarantine {
		t.Fatalf("P2: %v", d.Verdict)
	}
	if len(h.switches) != 2 || h.switches[1] != "safe2" {
		t.Fatalf("second rung: switches=%v", h.switches)
	}
	if got := h.events.kinds(obs.KindScheduleDegrade); len(got) != 2 {
		t.Fatalf("degrade events = %+v", got)
	}

	// Both partitions probe (cooldowns end at 110 and 130) and prove
	// healthy; once the last quarantine lifts, the restore countdown runs.
	e.OnTick(110)
	e.OnTick(120) // P1 breaker closes
	e.OnTick(130)
	e.OnTick(140) // P2 breaker closes; module healthy from here
	for tk := tick.Ticks(141); tk < 180; tk++ {
		e.OnTick(tk)
	}
	if !e.Degraded() {
		t.Fatal("restored too early")
	}
	e.OnTick(180)
	if e.Degraded() {
		t.Fatal("nominal schedule not restored after RestoreAfter healthy ticks")
	}
	if last := h.switches[len(h.switches)-1]; last != "nominal" {
		t.Fatalf("restore switched to %q, want nominal", last)
	}
	restores := h.events.kinds(obs.KindScheduleRestore)
	if len(restores) != 1 || restores[0].Latency != 180-10 {
		t.Fatalf("restore events = %+v", restores)
	}
}

func TestNoteModuleErrorActivatesFirstRung(t *testing.T) {
	h := newHarness(t, Policy{
		Degradation: Degradation{
			Ladder:        []Rung{{Quarantined: 1, Schedule: "safe"}},
			OnModuleError: true,
			RestoreAfter:  20,
		},
	})
	e := h.engine
	e.NoteModuleError(100)
	if !e.Degraded() || len(h.switches) != 1 || h.switches[0] != "safe" {
		t.Fatalf("module error: degraded=%v switches=%v", e.Degraded(), h.switches)
	}
	// No quarantined partitions, so the restore countdown starts at once.
	e.OnTick(110)
	if !e.Degraded() {
		t.Fatal("restored too early")
	}
	e.OnTick(130)
	if e.Degraded() {
		t.Fatal("still degraded after RestoreAfter")
	}
}

func TestResetClearsAllState(t *testing.T) {
	h := newHarness(t, Policy{
		Default:    Budget{MaxRestarts: 1, Window: 100},
		Quarantine: Quarantine{Failures: 1, FailureWindow: 50, Cooldown: 100, ProbeTicks: 10},
		Degradation: Degradation{
			Ladder: []Rung{{Quarantined: 1, Schedule: "safe"}}, RestoreAfter: 10,
		},
	})
	e := h.engine
	h.now = 0
	e.RequestRestart("P1", model.ModeColdStart)
	h.now = 10
	e.RequestRestart("P1", model.ModeColdStart) // quarantined + degraded
	e.Reset()
	if e.StatusOf("P1") != StatusNormal || e.Degraded() || len(e.Quarantined()) != 0 {
		t.Fatalf("reset incomplete: status=%v degraded=%v", e.StatusOf("P1"), e.Degraded())
	}
	h.now = 20
	if d := e.RequestRestart("P1", model.ModeColdStart); d.Verdict != VerdictAllow {
		t.Fatalf("after reset: %v", d.Verdict)
	}
}

func TestUnknownPartitionIsAlwaysAllowed(t *testing.T) {
	h := newHarness(t, Policy{Default: Budget{MaxRestarts: 1, Window: 100}})
	if d := h.engine.RequestRestart("P9", model.ModeColdStart); d.Verdict != VerdictAllow {
		t.Fatalf("unknown partition: %v", d.Verdict)
	}
}

func TestPolicyValidate(t *testing.T) {
	parts := []model.PartitionName{"P1", "P2"}
	scheds := []string{"chi1", "chi2"}
	cases := []struct {
		name string
		p    Policy
		want string // substring of the error, "" for valid
	}{
		{"zero policy", Policy{}, ""},
		{"default policy", DefaultPolicy(), ""},
		{"unknown budget partition",
			Policy{Budgets: map[model.PartitionName]Budget{"P9": {MaxRestarts: 1, Window: 1}}},
			"unknown partition"},
		{"negative budget", Policy{Default: Budget{MaxRestarts: -1}}, "negative"},
		{"budget without window", Policy{Default: Budget{MaxRestarts: 1}}, "without a window"},
		{"negative quarantine", Policy{Quarantine: Quarantine{Failures: -1}}, "negative"},
		{"rung threshold zero",
			Policy{Degradation: Degradation{Ladder: []Rung{{Quarantined: 0, Schedule: "chi2"}}}},
			"threshold"},
		{"rung empty schedule",
			Policy{Degradation: Degradation{Ladder: []Rung{{Quarantined: 1}}}},
			"empty schedule"},
		{"rung unknown schedule",
			Policy{Degradation: Degradation{Ladder: []Rung{{Quarantined: 1, Schedule: "chi9"}}}},
			"unknown schedule"},
		{"valid ladder",
			Policy{Degradation: Degradation{Ladder: []Rung{{Quarantined: 1, Schedule: "chi2"}}}},
			""},
	}
	for _, tc := range cases {
		err := tc.p.Validate(parts, scheds)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictAllow: "allow", VerdictDefer: "defer", VerdictQuarantine: "quarantine",
		Verdict(0): "Verdict(0)",
	} {
		if v.String() != want {
			t.Errorf("Verdict %d = %q, want %q", v, v.String(), want)
		}
	}
	for s, want := range map[Status]string{
		StatusNormal: "normal", StatusDeferred: "deferred",
		StatusQuarantined: "quarantined", StatusHalfOpen: "half-open",
		Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Errorf("Status %d = %q, want %q", s, s.String(), want)
		}
	}
}
