// Package recovery is the HM-driven recovery orchestration layer: a policy
// engine between the Health Monitor's per-error decisions (paper Sect. 2.4,
// 5) and the kernel's execution of them. The Health Monitor decides *one*
// recovery action per error; it says nothing about recovery that fails — a
// partition that cold-starts, faults again and cold-starts forever consumes
// its processor windows doing nothing useful (the restart-storm failure
// mode). This layer closes the loop with three deterministic, tick-based
// mechanisms:
//
//   - Restart budgets with exponential backoff: each partition holds a
//     token-bucket of restarts per sliding tick-window; a restart exceeding
//     the budget is deferred by a backoff delay that doubles per consecutive
//     deferral.
//   - Circuit-breaker quarantine: after N failed recoveries (restarts
//     re-requested within a failure window of the previous one) the
//     partition is driven to idle and marked quarantined; after a cooldown a
//     half-open probe restart is attempted, and only a probe that stays
//     healthy closes the breaker. A probe that faults reopens it with a
//     doubled cooldown.
//   - Graceful degradation: a configurable escalation ladder that, on
//     quarantine (or module-level error), switches the module to a
//     designated safe-mode schedule via the existing mode-based schedule
//     machinery (paper Sect. 4), and restores the nominal schedule once no
//     partition has been quarantined for a configured number of ticks.
//
// The engine is purely logical-time driven and holds no locks: the module's
// strict-alternation execution model already serializes every caller. All
// state transitions are published on the observability spine
// (RESTART_DEFERRED, QUARANTINE_ENTER/EXIT, SCHEDULE_DEGRADE/RESTORE), and
// quarantine durations (MTTR), degraded-mode residency, backoff delays and
// window occupancies feed the spine's recovery histograms.
package recovery

import (
	"fmt"
	"sort"

	"air/internal/model"
	"air/internal/obs"
	"air/internal/tick"
)

// Budget is a partition's restart token-bucket: at most MaxRestarts restart
// grants inside any sliding Window of ticks. The zero Budget disables
// budgeting (every restart is granted immediately).
type Budget struct {
	// MaxRestarts is the number of restarts granted per sliding window;
	// 0 disables the budget.
	MaxRestarts int
	// Window is the sliding window length in ticks.
	Window tick.Ticks
	// BackoffBase is the first deferral delay; consecutive deferrals double
	// it. 0 defaults to Window.
	BackoffBase tick.Ticks
	// BackoffMax caps the doubled delays; 0 means uncapped.
	BackoffMax tick.Ticks
}

func (b Budget) enabled() bool { return b.MaxRestarts > 0 && b.Window > 0 }

// Quarantine configures the circuit breaker. The zero Quarantine disables
// it.
type Quarantine struct {
	// Failures is the number of failed recoveries inside FailureWindow that
	// trips the breaker; 0 disables quarantine.
	Failures int
	// FailureWindow classifies a restart re-requested within this many
	// ticks of the previous granted restart as a failed recovery.
	FailureWindow tick.Ticks
	// Cooldown is the quarantine duration before the half-open probe
	// restart is attempted.
	Cooldown tick.Ticks
	// CooldownMax caps the cooldown doubling applied when a probe faults;
	// 0 means uncapped.
	CooldownMax tick.Ticks
	// ProbeTicks is how long a half-open probe must stay healthy before the
	// breaker closes and the quarantine is lifted.
	ProbeTicks tick.Ticks
}

func (q Quarantine) enabled() bool { return q.Failures > 0 && q.FailureWindow > 0 }

// Rung is one step of the degradation ladder: when at least Quarantined
// partitions are quarantined, the module switches to Schedule.
type Rung struct {
	// Quarantined is the rung's activation threshold (≥ 1).
	Quarantined int
	// Schedule names the safe-mode scheduling table to switch to.
	Schedule string
}

// Degradation configures graceful degradation to safe-mode schedules.
type Degradation struct {
	// Ladder lists the escalation rungs; the deepest rung whose threshold
	// the quarantined-partition count meets is active. Empty disables
	// degradation.
	Ladder []Rung
	// OnModuleError additionally activates the ladder's first rung when a
	// module-level error resets the module.
	OnModuleError bool
	// RestoreAfter is how long the module must stay free of quarantined
	// partitions before the nominal schedule is restored.
	RestoreAfter tick.Ticks
}

// Policy is the complete recovery-orchestration policy of one module.
type Policy struct {
	// Default is the budget applied to partitions without an entry in
	// Budgets.
	Default Budget
	// Budgets holds per-partition budget overrides.
	Budgets map[model.PartitionName]Budget
	// Quarantine is the module-wide circuit-breaker configuration.
	Quarantine Quarantine
	// Degradation is the safe-mode schedule escalation ladder.
	Degradation Degradation
}

// DefaultPolicy returns a conservative policy sized for the paper's Fig. 8
// prototype (MTF 1300): two restarts per two-MTF window backing off from
// half an MTF, quarantine after three failed recoveries, and a two-MTF
// cooldown with a one-MTF health probe. The degradation ladder is empty —
// safe-mode schedules are system-specific and must be named explicitly.
func DefaultPolicy() Policy {
	return Policy{
		Default: Budget{MaxRestarts: 2, Window: 2600, BackoffBase: 650, BackoffMax: 5200},
		Quarantine: Quarantine{
			Failures: 3, FailureWindow: 1300,
			Cooldown: 2600, CooldownMax: 10400, ProbeTicks: 1300,
		},
		Degradation: Degradation{RestoreAfter: 2600},
	}
}

// Validate checks the policy against the module's partition set and (when
// non-nil) its schedule names.
func (p Policy) Validate(partitions []model.PartitionName, schedules []string) error {
	known := make(map[model.PartitionName]bool, len(partitions))
	for _, name := range partitions {
		known[name] = true
	}
	names := make([]string, 0, len(p.Budgets))
	for name := range p.Budgets { //air:allow(maprange): collected into a slice and sorted below
		names = append(names, string(name))
	}
	sort.Strings(names)
	for _, name := range names {
		if !known[model.PartitionName(name)] {
			return fmt.Errorf("recovery: budget for unknown partition %q", name)
		}
		if err := p.Budgets[model.PartitionName(name)].validate(); err != nil {
			return fmt.Errorf("recovery: partition %q: %w", name, err)
		}
	}
	if err := p.Default.validate(); err != nil {
		return fmt.Errorf("recovery: default budget: %w", err)
	}
	q := p.Quarantine
	if q.Failures < 0 || q.FailureWindow < 0 || q.Cooldown < 0 || q.CooldownMax < 0 || q.ProbeTicks < 0 {
		return fmt.Errorf("recovery: negative quarantine parameter")
	}
	d := p.Degradation
	if d.RestoreAfter < 0 {
		return fmt.Errorf("recovery: negative RestoreAfter")
	}
	haveSchedules := schedules != nil
	knownSched := make(map[string]bool, len(schedules))
	for _, s := range schedules {
		knownSched[s] = true
	}
	for i, r := range d.Ladder {
		if r.Quarantined < 1 {
			return fmt.Errorf("recovery: ladder rung %d: threshold %d < 1", i, r.Quarantined)
		}
		if r.Schedule == "" {
			return fmt.Errorf("recovery: ladder rung %d: empty schedule name", i)
		}
		if haveSchedules && !knownSched[r.Schedule] {
			return fmt.Errorf("recovery: ladder rung %d: unknown schedule %q", i, r.Schedule)
		}
	}
	return nil
}

func (b Budget) validate() error {
	if b.MaxRestarts < 0 || b.Window < 0 || b.BackoffBase < 0 || b.BackoffMax < 0 {
		return fmt.Errorf("negative budget parameter")
	}
	if b.MaxRestarts > 0 && b.Window <= 0 {
		return fmt.Errorf("MaxRestarts %d without a window", b.MaxRestarts)
	}
	return nil
}

// Verdict is the engine's arbitration of one restart request.
type Verdict int

// Verdicts.
const (
	// VerdictAllow grants the restart: the caller executes it now.
	VerdictAllow Verdict = iota + 1
	// VerdictDefer postpones the restart: the caller idles the partition
	// and the engine restarts it from OnTick once the backoff elapses.
	VerdictDefer
	// VerdictQuarantine trips the circuit breaker: the caller idles the
	// partition and the engine probes it from OnTick after the cooldown.
	VerdictQuarantine
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAllow:
		return "allow"
	case VerdictDefer:
		return "defer"
	case VerdictQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Decision is the engine's answer to RequestRestart.
type Decision struct {
	Verdict Verdict
	// Occupancy is the partition's restart count in the sliding budget
	// window including this grant (VerdictAllow only); the kernel stamps it
	// onto the PARTITION_RESTART trace event to feed the restarts-per-window
	// histogram.
	Occupancy int
	// ResumeAt is the tick at which a deferred restart will execute
	// (VerdictDefer only).
	ResumeAt tick.Ticks
}

// Status is a partition's recovery state.
type Status int

// Statuses.
const (
	StatusNormal Status = iota
	StatusDeferred
	StatusQuarantined
	StatusHalfOpen
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusNormal:
		return "normal"
	case StatusDeferred:
		return "deferred"
	case StatusQuarantined:
		return "quarantined"
	case StatusHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Hooks are the kernel operations the engine drives. Restart must execute a
// partition restart immediately (occupancy is the restart count inside the
// sliding budget window, stamped onto the PARTITION_RESTART trace event);
// SwitchSchedule must request a module schedule switch by name (taking
// effect at the next MTF boundary, Sect. 4) and report whether the request
// was accepted; ScheduleName must name the currently active schedule
// (captured as the nominal schedule when degradation begins).
type Hooks struct {
	Restart        func(p model.PartitionName, mode model.OperatingMode, reason string, occupancy int)
	SwitchSchedule func(name string) bool
	ScheduleName   func() string
}

// Options configures an Engine.
type Options struct {
	// Now supplies the current logical time.
	Now func() tick.Ticks
	// Obs publishes the engine's state transitions on the module spine.
	Obs obs.Emitter
	// Hooks are the kernel operations (see Hooks).
	Hooks Hooks
	// Partitions fixes the deterministic iteration order of per-partition
	// state (the module's configuration order).
	Partitions []model.PartitionName
}

// Engine is the per-module recovery orchestrator. It is not internally
// synchronized: the module's strict alternation serializes all callers.
type Engine struct {
	policy Policy
	now    func() tick.Ticks
	obs    obs.Emitter
	hooks  Hooks
	parts  []*partState
	byName map[model.PartitionName]*partState
	ladder []Rung // sorted by ascending threshold
	deg    degradeState
}

type partState struct {
	name   model.PartitionName
	status Status
	// restarts holds the grant times inside the sliding budget window.
	restarts []tick.Ticks
	// deferrals counts consecutive deferrals (the backoff exponent).
	deferrals int
	// failures holds the failed-recovery times inside the failure window.
	failures []tick.Ticks
	// lastGrant is the time of the most recent granted restart.
	lastGrant tick.Ticks
	granted   bool
	// resumeAt/resumeMode describe the pending deferred restart.
	resumeAt   tick.Ticks
	resumeMode model.OperatingMode
	// quarantinedAt is when the current quarantine episode began (preserved
	// across failed probes so MTTR spans the whole episode).
	quarantinedAt tick.Ticks
	cooldown      tick.Ticks
	cooldownUntil tick.Ticks
	probeStart    tick.Ticks
}

type degradeState struct {
	active       bool
	rung         int
	nominal      string
	enteredAt    tick.Ticks
	healthySince tick.Ticks
	healthyValid bool
}

// NewEngine builds an engine for a validated policy.
func NewEngine(p Policy, opts Options) *Engine {
	e := &Engine{
		policy: p,
		now:    opts.Now,
		obs:    opts.Obs,
		hooks:  opts.Hooks,
		byName: make(map[model.PartitionName]*partState, len(opts.Partitions)),
	}
	if e.now == nil {
		e.now = func() tick.Ticks { return 0 }
	}
	for _, name := range opts.Partitions {
		st := &partState{name: name}
		e.parts = append(e.parts, st)
		e.byName[name] = st
	}
	e.ladder = append([]Rung(nil), p.Degradation.Ladder...)
	sort.SliceStable(e.ladder, func(i, j int) bool {
		return e.ladder[i].Quarantined < e.ladder[j].Quarantined
	})
	return e
}

// RequestRestart arbitrates an HM-decided partition restart. VerdictAllow
// means the caller executes the restart now; VerdictDefer and
// VerdictQuarantine mean the caller must drive the partition to idle — the
// engine restarts it later from OnTick.
func (e *Engine) RequestRestart(p model.PartitionName, mode model.OperatingMode) Decision {
	st := e.byName[p]
	if st == nil {
		return Decision{Verdict: VerdictAllow}
	}
	now := e.now()
	q := e.policy.Quarantine
	switch st.status {
	case StatusQuarantined:
		return Decision{Verdict: VerdictQuarantine}
	case StatusDeferred:
		return Decision{Verdict: VerdictDefer, ResumeAt: st.resumeAt}
	case StatusHalfOpen:
		// The probe faulted before proving health: reopen the breaker with
		// a doubled cooldown.
		st.cooldown = doubled(st.cooldown, q.CooldownMax)
		e.enterQuarantine(st, now, "half-open probe failed")
		return Decision{Verdict: VerdictQuarantine}
	}
	// Failed-recovery detection: a restart requested this soon after the
	// previous granted one means that recovery did not take.
	if q.enabled() && st.granted && now-st.lastGrant <= q.FailureWindow {
		st.failures = pruneTimes(st.failures, now-q.FailureWindow)
		st.failures = append(st.failures, now)
		if len(st.failures) >= q.Failures {
			st.cooldown = q.Cooldown
			e.enterQuarantine(st, now, "repeated failed recoveries")
			return Decision{Verdict: VerdictQuarantine}
		}
	}
	b := e.budgetFor(p)
	if b.enabled() {
		st.restarts = pruneTimes(st.restarts, now-b.Window)
		if len(st.restarts) >= b.MaxRestarts {
			delay := backoff(b, st.deferrals)
			st.deferrals++
			st.status = StatusDeferred
			st.resumeAt = now + delay
			st.resumeMode = mode
			e.obs.Emit(obs.Event{
				Time: now, Kind: obs.KindRestartDeferred, Partition: p,
				Latency: delay, Detail: "restart budget exhausted",
			})
			return Decision{Verdict: VerdictDefer, ResumeAt: st.resumeAt}
		}
		st.deferrals = 0
	}
	st.restarts = append(st.restarts, now)
	st.lastGrant, st.granted = now, true
	return Decision{Verdict: VerdictAllow, Occupancy: len(st.restarts)}
}

// OnTick advances the engine to the given time: it executes due deferred
// restarts, launches half-open probes whose cooldown elapsed, closes the
// breaker for probes that stayed healthy and restores the nominal schedule
// once the module has stayed healthy long enough.
func (e *Engine) OnTick(now tick.Ticks) {
	q := e.policy.Quarantine
	for _, st := range e.parts {
		switch st.status {
		case StatusDeferred:
			if now >= st.resumeAt {
				st.status = StatusNormal
				if b := e.budgetFor(st.name); b.enabled() {
					st.restarts = pruneTimes(st.restarts, now-b.Window)
				}
				st.restarts = append(st.restarts, now)
				st.lastGrant, st.granted = now, true
				e.hooks.Restart(st.name, st.resumeMode, "deferred restart resumed", len(st.restarts))
			}
		case StatusQuarantined:
			if now >= st.cooldownUntil {
				st.status = StatusHalfOpen
				st.probeStart = now
				st.lastGrant, st.granted = now, true
				e.hooks.Restart(st.name, model.ModeColdStart, "half-open probe", 1)
			}
		case StatusHalfOpen:
			if now-st.probeStart >= q.ProbeTicks {
				st.status = StatusNormal
				st.failures = st.failures[:0]
				st.restarts = st.restarts[:0]
				st.deferrals = 0
				e.obs.Emit(obs.Event{
					Time: now, Kind: obs.KindQuarantineExit, Partition: st.name,
					Latency: now - st.quarantinedAt,
					Detail:  "probe healthy, quarantine lifted",
				})
				e.evalDegradation(now)
			}
		}
	}
	e.tickRestore(now)
}

// NoteModuleError escalates to the ladder's first rung on a module-level
// error, when the policy requests it.
func (e *Engine) NoteModuleError(now tick.Ticks) {
	if !e.policy.Degradation.OnModuleError || len(e.ladder) == 0 || e.hooks.SwitchSchedule == nil {
		return
	}
	e.applyRung(now, 0, "module-level error")
}

// Reset clears all per-partition recovery state and the degradation state
// (used on module reset, which cold-starts every partition).
func (e *Engine) Reset() {
	for _, st := range e.parts {
		*st = partState{name: st.name}
	}
	e.deg = degradeState{}
}

// StatusOf reports a partition's recovery status.
func (e *Engine) StatusOf(p model.PartitionName) Status {
	if st := e.byName[p]; st != nil {
		return st.status
	}
	return StatusNormal
}

// Quarantined lists the currently quarantined partitions (including
// half-open probes, which have not yet proven health) in configuration
// order.
func (e *Engine) Quarantined() []model.PartitionName {
	var out []model.PartitionName
	for _, st := range e.parts {
		if st.status == StatusQuarantined || st.status == StatusHalfOpen {
			out = append(out, st.name)
		}
	}
	return out
}

// Degraded reports whether a degradation rung is currently active.
func (e *Engine) Degraded() bool { return e.deg.active }

func (e *Engine) budgetFor(name model.PartitionName) Budget {
	if b, ok := e.policy.Budgets[name]; ok {
		return b
	}
	return e.policy.Default
}

func (e *Engine) enterQuarantine(st *partState, now tick.Ticks, reason string) {
	if st.status != StatusHalfOpen {
		st.quarantinedAt = now
	}
	st.status = StatusQuarantined
	st.cooldownUntil = now + st.cooldown
	st.failures = st.failures[:0]
	e.obs.Emit(obs.Event{
		Time: now, Kind: obs.KindQuarantineEnter, Partition: st.name, Detail: reason,
	})
	e.evalDegradation(now)
}

func (e *Engine) quarantinedCount() int {
	n := 0
	for _, st := range e.parts {
		if st.status == StatusQuarantined || st.status == StatusHalfOpen {
			n++
		}
	}
	return n
}

// evalDegradation re-evaluates the ladder after a quarantine transition:
// the deepest rung whose threshold the quarantined count meets is applied.
// Dropping below every rung does not switch immediately — restoration waits
// for RestoreAfter healthy ticks (tickRestore).
func (e *Engine) evalDegradation(now tick.Ticks) {
	if len(e.ladder) == 0 || e.hooks.SwitchSchedule == nil {
		return
	}
	count := e.quarantinedCount()
	rung := -1
	for i, r := range e.ladder {
		if count >= r.Quarantined {
			rung = i
		}
	}
	if rung >= 0 {
		e.applyRung(now, rung, fmt.Sprintf("%d partition(s) quarantined", count))
	}
}

func (e *Engine) applyRung(now tick.Ticks, rung int, why string) {
	if e.deg.active && e.deg.rung == rung {
		return
	}
	if !e.deg.active {
		e.deg.nominal = ""
		if e.hooks.ScheduleName != nil {
			e.deg.nominal = e.hooks.ScheduleName()
		}
		e.deg.enteredAt = now
	}
	sched := e.ladder[rung].Schedule
	if !e.hooks.SwitchSchedule(sched) {
		return
	}
	e.deg.active = true
	e.deg.rung = rung
	e.deg.healthyValid = false
	e.obs.Emit(obs.Event{
		Time: now, Kind: obs.KindScheduleDegrade,
		Detail: "degraded to schedule " + sched + ": " + why,
	})
}

// tickRestore restores the nominal schedule once the module has stayed free
// of quarantined partitions for RestoreAfter consecutive ticks.
func (e *Engine) tickRestore(now tick.Ticks) {
	if !e.deg.active {
		return
	}
	if e.quarantinedCount() > 0 {
		e.deg.healthyValid = false
		return
	}
	if !e.deg.healthyValid {
		e.deg.healthySince = now
		e.deg.healthyValid = true
	}
	if now-e.deg.healthySince < e.policy.Degradation.RestoreAfter {
		return
	}
	if e.deg.nominal != "" && e.hooks.SwitchSchedule(e.deg.nominal) {
		e.obs.Emit(obs.Event{
			Time: now, Kind: obs.KindScheduleRestore,
			Latency: now - e.deg.enteredAt,
			Detail:  "restored nominal schedule " + e.deg.nominal,
		})
	}
	e.deg = degradeState{}
}

// backoff is BackoffBase doubled per consecutive deferral, capped at
// BackoffMax (when set) and clamped against overflow.
func backoff(b Budget, deferrals int) tick.Ticks {
	d := b.BackoffBase
	if d <= 0 {
		d = b.Window
	}
	if d <= 0 {
		d = 1
	}
	if deferrals > 32 {
		deferrals = 32
	}
	for i := 0; i < deferrals; i++ {
		d *= 2
		if b.BackoffMax > 0 && d >= b.BackoffMax {
			return b.BackoffMax
		}
	}
	if b.BackoffMax > 0 && d > b.BackoffMax {
		d = b.BackoffMax
	}
	return d
}

// doubled doubles a cooldown with an optional cap.
func doubled(c, max tick.Ticks) tick.Ticks {
	if c <= 0 {
		return 1
	}
	c *= 2
	if max > 0 && c > max {
		c = max
	}
	return c
}

// pruneTimes drops the leading entries at or before cutoff, shifting the
// remainder in place so the backing array is reused.
func pruneTimes(ts []tick.Ticks, cutoff tick.Ticks) []tick.Ticks {
	i := 0
	for i < len(ts) && ts[i] <= cutoff {
		i++
	}
	if i == 0 {
		return ts
	}
	n := copy(ts, ts[i:])
	return ts[:n]
}
