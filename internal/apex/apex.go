// Package apex defines the data types of the ARINC 653 Application
// Executive (APEX) service interface (paper Sect. 2.3): return codes,
// directions, queuing disciplines, and the status structures returned by
// GET_*_STATUS services. The service implementations live in the core
// kernel; applications see them through the air facade package.
//
// AIR's APEX is "portable" (Sect. 2.3): the same application-facing surface
// is served regardless of the underlying POS — here, regardless of whether
// the partition runs the priority-preemptive RTOS kernel or the round-robin
// non-real-time kernel.
package apex

import (
	"fmt"

	"air/internal/model"
	"air/internal/tick"
)

// ReturnCode is the ARINC 653 service return code.
type ReturnCode int

// Return codes, matching ARINC 653 Part 1 semantics.
const (
	// NoError: successful completion.
	NoError ReturnCode = iota
	// NoAction: the system is already in the requested state.
	NoAction
	// NotAvailable: the request cannot be satisfied right now (e.g. empty
	// queue with zero timeout).
	NotAvailable
	// InvalidParam: a parameter is out of range or malformed.
	InvalidParam
	// InvalidConfig: the request violates the integration-time
	// configuration (e.g. unknown port, unauthorized schedule change).
	InvalidConfig
	// InvalidMode: the request is illegal in the current partition/process
	// mode (e.g. blocking call from the error handler).
	InvalidMode
	// TimedOut: a time-bounded wait expired.
	TimedOut
)

// String renders the return code in ARINC 653 spelling.
func (rc ReturnCode) String() string {
	switch rc {
	case NoError:
		return "NO_ERROR"
	case NoAction:
		return "NO_ACTION"
	case NotAvailable:
		return "NOT_AVAILABLE"
	case InvalidParam:
		return "INVALID_PARAM"
	case InvalidConfig:
		return "INVALID_CONFIG"
	case InvalidMode:
		return "INVALID_MODE"
	case TimedOut:
		return "TIMED_OUT"
	default:
		return fmt.Sprintf("ReturnCode(%d)", int(rc))
	}
}

// Direction is a port direction relative to the owning partition.
type Direction int

// Port directions.
const (
	Source Direction = iota + 1
	Destination
)

// String renders the direction.
func (d Direction) String() string {
	switch d {
	case Source:
		return "SOURCE"
	case Destination:
		return "DESTINATION"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// QueuingDiscipline selects how blocked processes queue on a resource.
type QueuingDiscipline int

// Queuing disciplines.
const (
	FIFO QueuingDiscipline = iota + 1
	PriorityOrder
)

// String renders the discipline.
func (q QueuingDiscipline) String() string {
	switch q {
	case FIFO:
		return "FIFO"
	case PriorityOrder:
		return "PRIORITY"
	default:
		return fmt.Sprintf("QueuingDiscipline(%d)", int(q))
	}
}

// Validity of a sampling-port message.
type Validity int

// Validity values.
const (
	Invalid Validity = iota + 1
	Valid
)

// String renders the validity.
func (v Validity) String() string {
	switch v {
	case Invalid:
		return "INVALID"
	case Valid:
		return "VALID"
	default:
		return fmt.Sprintf("Validity(%d)", int(v))
	}
}

// PartitionStatus is returned by GET_PARTITION_STATUS.
type PartitionStatus struct {
	Name model.PartitionName
	// Mode is the partition operating mode M_m(t), eq. (3).
	Mode model.OperatingMode
	// StartCount is the number of (re)starts, including the initial cold
	// start.
	StartCount int
	// System reports whether the partition is a system partition
	// (Sect. 2: allowed to bypass APEX and invoke module-level services).
	System bool
	// LockLevel is the current preemption lock level.
	LockLevel int
}

// ProcessStatus is returned by GET_PROCESS_STATUS: the runtime image of the
// status S_{m,q}(t) of eq. (12) plus static attributes.
type ProcessStatus struct {
	Name            string
	State           model.ProcessState
	BasePriority    model.Priority
	CurrentPriority model.Priority
	// DeadlineTime is D'_{m,q}(t); HasDeadline is false for processes with
	// D = ∞.
	DeadlineTime tick.Ticks
	HasDeadline  bool
	Period       tick.Ticks
	TimeCapacity tick.Ticks
	Periodic     bool
}

// SamplingPortStatus is returned by GET_SAMPLING_PORT_STATUS.
type SamplingPortStatus struct {
	Name       string
	Direction  Direction
	MaxMessage int
	Refresh    tick.Ticks
	// LastValidity is the validity of the last read message.
	LastValidity Validity
}

// QueuingPortStatus is returned by GET_QUEUING_PORT_STATUS.
type QueuingPortStatus struct {
	Name       string
	Direction  Direction
	MaxMessage int
	Depth      int
	// QueuedMessages is the number of messages currently queued.
	QueuedMessages int
}

// ModuleScheduleStatus is the GET_MODULE_SCHEDULE_STATUS result (Sect. 4.2,
// ARINC 653 Part 2): the time of the last schedule switch (0 if none ever
// occurred), the current schedule, and the next schedule (same as current if
// no change is pending).
type ModuleScheduleStatus struct {
	LastSwitch tick.Ticks
	Current    model.ScheduleID
	Next       model.ScheduleID
	// CurrentName and NextName carry the configured schedule names.
	CurrentName string
	NextName    string
}

// BufferStatus is returned by GET_BUFFER_STATUS.
type BufferStatus struct {
	Name            string
	MaxMessage      int
	Depth           int
	QueuedMessages  int
	WaitingSenders  int
	WaitingReceiver int
}

// BlackboardStatus is returned by GET_BLACKBOARD_STATUS.
type BlackboardStatus struct {
	Name       string
	MaxMessage int
	Displayed  bool
	Waiting    int
}

// SemaphoreStatus is returned by GET_SEMAPHORE_STATUS.
type SemaphoreStatus struct {
	Name    string
	Value   int
	Max     int
	Waiting int
}

// EventStatus is returned by GET_EVENT_STATUS.
type EventStatus struct {
	Name    string
	Up      bool
	Waiting int
}
