package apex

import "testing"

func TestReturnCodeStrings(t *testing.T) {
	tests := map[ReturnCode]string{
		NoError:         "NO_ERROR",
		NoAction:        "NO_ACTION",
		NotAvailable:    "NOT_AVAILABLE",
		InvalidParam:    "INVALID_PARAM",
		InvalidConfig:   "INVALID_CONFIG",
		InvalidMode:     "INVALID_MODE",
		TimedOut:        "TIMED_OUT",
		ReturnCode(404): "ReturnCode(404)",
	}
	for rc, want := range tests {
		if got := rc.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", rc, got, want)
		}
	}
}

func TestDirectionStrings(t *testing.T) {
	if Source.String() != "SOURCE" || Destination.String() != "DESTINATION" {
		t.Error("direction strings wrong")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Error("unknown direction string wrong")
	}
}

func TestQueuingDisciplineStrings(t *testing.T) {
	if FIFO.String() != "FIFO" || PriorityOrder.String() != "PRIORITY" {
		t.Error("discipline strings wrong")
	}
	if QueuingDiscipline(9).String() != "QueuingDiscipline(9)" {
		t.Error("unknown discipline string wrong")
	}
}

func TestValidityStrings(t *testing.T) {
	if Valid.String() != "VALID" || Invalid.String() != "INVALID" {
		t.Error("validity strings wrong")
	}
	if Validity(9).String() != "Validity(9)" {
		t.Error("unknown validity string wrong")
	}
}
