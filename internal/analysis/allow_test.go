package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestAllowDirectives(t *testing.T) {
	analysistest.Run(t, analysis.AllowAnalyzer,
		"example.com/directives",
	)
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		comment string
		ok      bool
		name    string
		arg     string
		reason  string
	}{
		{"// plain comment", false, "", "", ""},
		{"// air:hotpath", false, "", "", ""}, // machine directives have no space
		{"//air:hotpath", true, "hotpath", "", ""},
		{"//air:allow(maprange): commutative fold", true, "allow", "maprange", "commutative fold"},
		{"//air:allow(wallclock):   spaced   ", true, "allow", "wallclock", "spaced"},
		{"//air:allow", true, "allow", "", ""},
		{"//air:allow(x)", true, "allow", "x", ""},
		{"//air:frobnicate", true, "frobnicate", "", ""},
		{"//air:", true, "", "", ""}, // malformed: recognized but nameless
		{"//air:allow(alloc): pool warmup // want `ignored`", true, "allow", "alloc", "pool warmup"},
	}
	for _, c := range cases {
		d, ok := analysis.ParseDirective(&ast.Comment{Text: c.comment})
		if ok != c.ok {
			t.Errorf("ParseDirective(%q): recognized=%v, want %v", c.comment, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Name != c.name || d.Arg != c.arg || d.Reason != c.reason {
			t.Errorf("ParseDirective(%q) = (%q, %q, %q), want (%q, %q, %q)",
				c.comment, d.Name, d.Arg, d.Reason, c.name, c.arg, c.reason)
		}
	}
}

const allowScopeSrc = `package p

// cold builds lookup tables once at module init.
//
//air:allow(alloc): init-time table build, off the tick path
func cold() {
	x := make([]int, 8)
	_ = x
}

func mixed() {
	a := 1 //air:allow(maprange): end-of-line placement
	//air:allow(wallclock): line-above placement
	b := 2
	c := 3
	_, _, _ = a, b, c
}
`

func TestAllowIndexScoping(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", allowScopeSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := analysis.NewAllowIndex(fset, []*ast.File{file})

	posOf := func(line int) (token.Position, token.Pos) {
		tf := fset.File(file.Pos())
		p := tf.LineStart(line)
		return fset.Position(p), p
	}

	// Function-doc allow covers the whole body of cold (lines 6-9), for its
	// key only.
	for line := 6; line <= 9; line++ {
		position, pos := posOf(line)
		if !idx.AllowedAt(position, pos, analysis.KeyAlloc) {
			t.Errorf("line %d: function-scoped allow(alloc) should cover cold's body", line)
		}
		if idx.AllowedAt(position, pos, analysis.KeyClosure) {
			t.Errorf("line %d: allow(alloc) must not grant other keys", line)
		}
	}

	// Line allows cover the directive line and the one below, nothing else.
	for _, c := range []struct {
		line  int
		key   string
		allow bool
	}{
		{12, analysis.KeyMapRange, true},  // end-of-line: its own line
		{13, analysis.KeyMapRange, true},  // ... and the next
		{14, analysis.KeyMapRange, false}, // but not two lines down
		{13, analysis.KeyWallclock, true}, // line-above: directive's own line
		{14, analysis.KeyWallclock, true}, // ... and the statement below
		{15, analysis.KeyWallclock, false},
		{12, analysis.KeyAlloc, false}, // cold's function allow does not leak
	} {
		position, pos := posOf(c.line)
		if got := idx.AllowedAt(position, pos, c.key); got != c.allow {
			t.Errorf("line %d key %s: AllowedAt = %v, want %v", c.line, c.key, got, c.allow)
		}
	}
}
