package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardAnalyzer is airguard: struct fields annotated //air:guard(mu) may
// only be read or written while the named sibling mutex is held. The check
// is an intra-procedural, flow-sensitive lock-set analysis: Lock/RLock grow
// the held set, Unlock/RUnlock shrink it, defer Unlock holds to function
// exit, and branches merge conservatively (a lock is held after an if only
// when every falling-through arm holds it). Writes require the exclusive
// lock; reads accept an RLock. Methods annotated //air:locked(mu) assert
// the caller already holds mu: the annotation seeds the method's lock set,
// and every call site is checked for the lock (or for exclusive ownership
// of a freshly constructed receiver, the constructor pattern).
var GuardAnalyzer = &Analyzer{
	Name: "airguard",
	Doc:  "fields annotated //air:guard(mu) are only accessed while mu is held",
	Run:  runGuard,
}

// lock-set entries: how a mutex path is held.
const (
	lockExcl = iota + 1
	lockRead
)

type guardInfo struct {
	mu string // sibling mutex field name
	rw bool   // sibling is a sync.RWMutex
}

// mutexKind reports whether t (possibly a pointer) is sync.Mutex or
// sync.RWMutex.
func mutexKind(t types.Type) (rw, ok bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

func runGuard(pass *Pass) {
	guarded := map[types.Object]guardInfo{} // field object → guard
	lockedFns := map[types.Object]string{}  // //air:locked function → mutex name

	// Pass 1: collect //air:guard annotations from struct declarations and
	// validate that the named sibling exists and is a mutex.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Sibling lookup: field name → type.
			siblings := map[string]types.Type{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						siblings[name.Name] = obj.Type()
					}
				}
			}
			for _, f := range st.Fields.List {
				mu := GuardArg(f)
				if mu == "" {
					continue
				}
				sib, found := siblings[mu]
				if !found {
					pass.Reportf(f.Pos(), KeyGuard, "//air:guard(%s): struct has no sibling field %q", mu, mu)
					continue
				}
				rw, isMutex := mutexKind(sib)
				if !isMutex {
					pass.Reportf(f.Pos(), KeyGuard, "//air:guard(%s): sibling %q is %s, not a sync.Mutex or sync.RWMutex", mu, mu, sib)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = guardInfo{mu: mu, rw: rw}
					}
				}
			}
			return true
		})
	}

	// Pass 2: collect //air:locked methods and validate the named field.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			mu := LockedArg(fd)
			if mu == "" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := fd.Recv.List[0]
			if t := pass.Info.TypeOf(recv.Type); t != nil {
				if !hasMutexField(t, mu) {
					pass.Reportf(fd.Pos(), KeyGuard, "//air:locked(%s): receiver type has no mutex field %q", mu, mu)
					continue
				}
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				lockedFns[obj] = mu
			}
		}
	}

	// Pass 3: flow-sensitive lock-set walk of every function body.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := &guardWalker{pass: pass, guarded: guarded, locked: lockedFns, explicitUnlock: map[string]bool{}}
			// Pre-scan: paths explicitly unlocked anywhere in the function.
			// The defer-insert fix is only safe when no such unlock exists.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if path, op := g.lockOp(call); path != "" && (op == "Unlock" || op == "RUnlock") {
						g.explicitUnlock[path] = true
					}
				}
				return true
			})
			st := newLockState()
			// //air:locked(mu) seeds the receiver's mutex as held.
			if mu := LockedArg(fd); mu != "" && fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				st.held[fd.Recv.List[0].Names[0].Name+"."+mu] = lockExcl
				st.seeded[fd.Recv.List[0].Names[0].Name+"."+mu] = true
			}
			g.walkStmt(fd.Body, st)
			g.exitCheck(st, fd.Body.Rbrace)
		}
	}
}

// hasMutexField reports whether t (struct or pointer to struct) has a field
// named mu of a mutex type.
func hasMutexField(t types.Type, mu string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return true // not a struct receiver: nothing to validate against
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == mu {
			_, isMutex := mutexKind(st.Field(i).Type())
			return isMutex
		}
	}
	return false
}

// lockState is the abstract state at one program point.
type lockState struct {
	held       map[string]int        // mutex path → lockExcl/lockRead
	deferred   map[string]bool       // mutex paths with a pending deferred unlock
	seeded     map[string]bool       // paths held by //air:locked precondition
	lockSite   map[string]token.Pos  // where each held path was locked
	lockStmt   map[string]ast.Stmt   // the Lock statement, for the defer-insert fix
	fresh      map[types.Object]bool // locals that exclusively own their value
	terminated bool
}

func newLockState() *lockState {
	return &lockState{
		held:     map[string]int{},
		deferred: map[string]bool{},
		seeded:   map[string]bool{},
		lockSite: map[string]token.Pos{},
		lockStmt: map[string]ast.Stmt{},
		fresh:    map[types.Object]bool{},
	}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	for k := range s.seeded {
		c.seeded[k] = true
	}
	for k, v := range s.lockSite {
		c.lockSite[k] = v
	}
	for k, v := range s.lockStmt {
		c.lockStmt[k] = v
	}
	for k := range s.fresh {
		c.fresh[k] = true
	}
	c.terminated = s.terminated
	return c
}

// merge folds an alternative arm's exit state into s (conservative
// intersection: a lock is held only if held on every falling-through arm; a
// read hold on any arm downgrades an exclusive hold).
func (s *lockState) merge(alt *lockState) {
	if alt.terminated {
		return // the arm never falls through; s stands
	}
	if s.terminated {
		*s = *alt.clone()
		return
	}
	for k, v := range s.held {
		av, ok := alt.held[k]
		if !ok {
			delete(s.held, k)
			continue
		}
		if av == lockRead && v == lockExcl {
			s.held[k] = lockRead
		}
	}
	for k := range s.deferred {
		if !alt.deferred[k] {
			delete(s.deferred, k)
		}
	}
	for k := range s.fresh {
		if !alt.fresh[k] {
			delete(s.fresh, k)
		}
	}
}

type guardWalker struct {
	pass           *Pass
	guarded        map[types.Object]guardInfo
	locked         map[types.Object]string
	explicitUnlock map[string]bool
}

// renderPath renders a selector chain of identifiers ("c.mu", "t.reg") or ""
// when the expression is not a plain chain.
func renderPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := renderPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return renderPath(x.X)
	case *ast.StarExpr:
		return renderPath(x.X)
	}
	return ""
}

// rootIdent returns the leftmost identifier's object of a selector chain.
func (g *guardWalker) rootIdent(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return g.pass.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockOp classifies a call as a mutex operation on a renderable path.
func (g *guardWalker) lockOp(call *ast.CallExpr) (path, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t := g.pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if _, ok := mutexKind(t); !ok {
		return "", ""
	}
	return renderPath(sel.X), sel.Sel.Name
}

func (g *guardWalker) walkStmt(stmt ast.Stmt, st *lockState) {
	if stmt == nil {
		return
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			g.walkStmt(inner, st)
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if g.applyCall(call, s, st) {
				return
			}
		}
		g.walkExpr(s.X, st, false)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			g.walkExpr(rhs, st, false)
		}
		for _, lhs := range s.Lhs {
			g.walkWrite(lhs, st)
		}
		g.trackFresh(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					g.walkExpr(v, st, false)
					if i < len(vs.Names) && isFreshExpr(v) {
						if obj := g.pass.Info.Defs[vs.Names[i]]; obj != nil {
							st.fresh[obj] = true
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		g.walkWrite(s.X, st)
	case *ast.SendStmt:
		g.walkExpr(s.Chan, st, false)
		g.walkExpr(s.Value, st, false)
	case *ast.DeferStmt:
		if path, op := g.lockOp(s.Call); path != "" && (op == "Unlock" || op == "RUnlock") {
			if st.deferred[path] {
				g.pass.Reportf(s.Pos(), KeyGuard, "duplicate deferred %s.%s(): the mutex would be unlocked twice at function exit", path, op)
			}
			st.deferred[path] = true
			return
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// Deferred cleanup closures run at exit; approximate with the
			// current lock state.
			g.walkStmt(lit.Body, st.clone())
			return
		}
		g.walkExpr(s.Call, st, false)
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			gst := newLockState()
			g.walkStmt(lit.Body, gst)
		}
		for _, arg := range s.Call.Args {
			g.walkExpr(arg, st, false)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			g.walkExpr(r, st, false)
		}
		g.exitCheck(st, s.Pos())
		st.terminated = true
	case *ast.BranchStmt:
		st.terminated = true
	case *ast.IfStmt:
		g.walkStmt(s.Init, st)
		g.walkExpr(s.Cond, st, false)
		thenSt := st.clone()
		g.walkStmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			g.walkStmt(s.Else, elseSt)
			*st = *thenSt
			st.merge(elseSt)
			return
		}
		// No else: the fall-through arm is the pre-if state.
		entry := st.clone()
		*st = *thenSt
		st.merge(entry)
	case *ast.ForStmt:
		g.walkStmt(s.Init, st)
		g.walkExpr(s.Cond, st, false)
		body := st.clone()
		g.walkStmt(s.Body, body)
		g.walkStmt(s.Post, body)
		// The loop body may run zero times: keep the entry state, but do not
		// lose a body that cannot terminate the loop's locks (diagnosed
		// inside the body walk itself).
	case *ast.RangeStmt:
		g.walkExpr(s.X, st, false)
		if s.Key != nil {
			g.walkWrite(s.Key, st)
		}
		if s.Value != nil {
			g.walkWrite(s.Value, st)
		}
		body := st.clone()
		g.walkStmt(s.Body, body)
	case *ast.SwitchStmt:
		g.walkStmt(s.Init, st)
		g.walkExpr(s.Tag, st, false)
		g.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		g.walkStmt(s.Init, st)
		g.walkStmt(s.Assign, st)
		g.walkCases(s.Body, st)
	case *ast.SelectStmt:
		g.walkCases(s.Body, st)
	case *ast.LabeledStmt:
		g.walkStmt(s.Stmt, st)
	}
}

// isFreshExpr reports whether the expression constructs a brand-new value
// (composite literal, &composite, make, new): a local bound to it owns the
// value exclusively until it is shared.
func isFreshExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
			return true
		}
	}
	return false
}

// trackFresh updates exclusive-ownership tracking across an assignment.
func (g *guardWalker) trackFresh(s *ast.AssignStmt, st *lockState) {
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := g.pass.Info.Defs[id]
		if obj == nil {
			obj = g.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if len(s.Lhs) == len(s.Rhs) && isFreshExpr(s.Rhs[i]) {
			st.fresh[obj] = true
		} else {
			delete(st.fresh, obj)
		}
	}
}

// walkCases walks each case arm against a clone of the entry state and
// merges the falling-through arms (plus the entry state, since a switch
// without a matching case falls through unchanged).
func (g *guardWalker) walkCases(body *ast.BlockStmt, st *lockState) {
	entry := st.clone()
	arms := []*lockState{}
	for _, c := range body.List {
		arm := entry.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				g.walkExpr(e, arm, false)
			}
			for _, inner := range cc.Body {
				g.walkStmt(inner, arm)
			}
		case *ast.CommClause:
			g.walkStmt(cc.Comm, arm)
			for _, inner := range cc.Body {
				g.walkStmt(inner, arm)
			}
		}
		arms = append(arms, arm)
	}
	for _, arm := range arms {
		st.merge(arm)
	}
}

// applyCall handles statement-position calls that change the lock state or
// carry a //air:locked precondition; it reports and returns true when the
// call was consumed as a lock operation.
func (g *guardWalker) applyCall(call *ast.CallExpr, stmt ast.Stmt, st *lockState) bool {
	if path, op := g.lockOp(call); path != "" {
		switch op {
		case "Lock", "RLock":
			if _, already := st.held[path]; already {
				g.pass.Reportf(call.Pos(), KeyGuard, "%s.%s() while %s is already held: self-deadlock", path, op, path)
			}
			if op == "Lock" {
				st.held[path] = lockExcl
			} else {
				st.held[path] = lockRead
			}
			st.lockSite[path] = call.Pos()
			st.lockStmt[path] = stmt
			return true
		case "Unlock", "RUnlock":
			if _, ok := st.held[path]; !ok {
				g.pass.Reportf(call.Pos(), KeyGuard, "%s.%s() but %s is not held on this path (missing Lock, or annotate the function //air:locked)", path, op, path)
			}
			delete(st.held, path)
			delete(st.seeded, path)
			return true
		}
	}
	g.walkExpr(call, st, false)
	return true
}

// checkLockedCall verifies that a call to an //air:locked(mu) method holds
// the receiver's mutex (or exclusively owns a fresh receiver).
func (g *guardWalker) checkLockedCall(call *ast.CallExpr, st *lockState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := g.pass.Info.Uses[sel.Sel]
	if obj == nil {
		return
	}
	mu, ok := g.locked[obj]
	if !ok {
		return
	}
	if root := g.rootIdent(sel.X); root != nil && st.fresh[root] {
		return // constructor pattern: the receiver is not shared yet
	}
	base := renderPath(sel.X)
	if base == "" {
		return // untrackable receiver expression
	}
	if _, held := st.held[base+"."+mu]; !held {
		g.pass.Reportf(call.Pos(), KeyGuard, "call to %s requires %s.%s held (declared //air:locked(%s))", sel.Sel.Name, base, mu, mu)
	}
}

// walkExpr checks guarded-field reads in an expression tree.
func (g *guardWalker) walkExpr(e ast.Expr, st *lockState, write bool) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		g.checkAccess(x, st, write)
		g.walkExpr(x.X, st, false)
	case *ast.CallExpr:
		// delete(c.m, k) mutates the map: the first argument is a write.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) == 2 {
			if _, isBuiltin := g.pass.Info.Uses[id].(*types.Builtin); isBuiltin || g.pass.Info.Uses[id] == nil {
				g.walkWrite(x.Args[0], st)
				g.walkExpr(x.Args[1], st, false)
				return
			}
		}
		g.walkExpr(x.Fun, st, false)
		for _, arg := range x.Args {
			g.walkExpr(arg, st, false)
		}
		g.checkLockedCall(x, st)
	case *ast.UnaryExpr:
		// Taking the address aliases the field: treat as a write-strength
		// access.
		g.walkExpr(x.X, st, x.Op == token.AND || write)
	case *ast.StarExpr:
		g.walkExpr(x.X, st, false)
	case *ast.ParenExpr:
		g.walkExpr(x.X, st, write)
	case *ast.IndexExpr:
		g.walkExpr(x.X, st, false)
		g.walkExpr(x.Index, st, false)
	case *ast.SliceExpr:
		g.walkExpr(x.X, st, false)
		g.walkExpr(x.Low, st, false)
		g.walkExpr(x.High, st, false)
		g.walkExpr(x.Max, st, false)
	case *ast.BinaryExpr:
		g.walkExpr(x.X, st, false)
		g.walkExpr(x.Y, st, false)
	case *ast.KeyValueExpr:
		g.walkExpr(x.Key, st, false)
		g.walkExpr(x.Value, st, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			g.walkExpr(el, st, false)
		}
	case *ast.TypeAssertExpr:
		g.walkExpr(x.X, st, false)
	case *ast.FuncLit:
		// Closures run on the current goroutine (sort.Slice and friends);
		// approximate with the current lock state.
		g.walkStmt(x.Body, st.clone())
	}
}

// walkWrite checks a write target, unwrapping index/star/paren wrappers to
// the guarded selector being mutated.
func (g *guardWalker) walkWrite(e ast.Expr, st *lockState) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		g.checkAccess(x, st, true)
		g.walkExpr(x.X, st, false)
	case *ast.IndexExpr:
		// Writing an element mutates the container: the container selector
		// needs the exclusive lock.
		g.walkWrite(x.X, st)
		g.walkExpr(x.Index, st, false)
	case *ast.StarExpr:
		g.walkExpr(x.X, st, false)
	case *ast.ParenExpr:
		g.walkWrite(x.X, st)
	case *ast.Ident:
		// Plain local write: nothing guarded.
	default:
		g.walkExpr(e, st, false)
	}
}

// checkAccess reports a guarded-field access without the required lock.
func (g *guardWalker) checkAccess(sel *ast.SelectorExpr, st *lockState, write bool) {
	obj := g.pass.Info.Uses[sel.Sel]
	if obj == nil {
		return
	}
	gi, ok := g.guarded[obj]
	if !ok {
		return
	}
	if root := g.rootIdent(sel.X); root != nil && st.fresh[root] {
		return // freshly constructed, not shared yet
	}
	base := renderPath(sel.X)
	if base == "" {
		return // untrackable base expression
	}
	kind := st.held[base+"."+gi.mu]
	if write {
		switch kind {
		case lockExcl:
			return
		case lockRead:
			g.pass.Reportf(sel.Sel.Pos(), KeyGuard, "write to %s.%s (guarded by %s) under RLock: writes need the exclusive Lock", base, sel.Sel.Name, gi.mu)
		default:
			g.pass.Reportf(sel.Sel.Pos(), KeyGuard, "write to %s.%s without holding %s.%s (//air:guard(%s))", base, sel.Sel.Name, base, gi.mu, gi.mu)
		}
		return
	}
	if kind == 0 {
		g.pass.Reportf(sel.Sel.Pos(), KeyGuard, "read of %s.%s without holding %s.%s (//air:guard(%s))", base, sel.Sel.Name, base, gi.mu, gi.mu)
	}
}

// exitCheck reports locks still held when control leaves the function on
// this path, with a machine fix (insert defer Unlock after the Lock) when
// the function has no explicit unlock to reorder around.
func (g *guardWalker) exitCheck(st *lockState, at token.Pos) {
	if st.terminated {
		return
	}
	for path, kind := range st.held {
		if st.deferred[path] || st.seeded[path] {
			continue
		}
		op := "Unlock"
		if kind == lockRead {
			op = "RUnlock"
		}
		var fix *SuggestedFix
		if stmt := st.lockStmt[path]; stmt != nil && !g.explicitUnlock[path] {
			fix = g.deferFix(stmt, path, op)
		}
		lockPos := g.pass.Fset.Position(st.lockSite[path])
		g.pass.ReportFix(at, KeyGuard, fix, "%s still held when the function returns (locked at line %d): unlock on every path or defer", path, lockPos.Line)
	}
}

// deferFix builds the insert-defer-unlock edit: after the Lock statement,
// on a new line with the same indentation.
func (g *guardWalker) deferFix(lockStmt ast.Stmt, path, op string) *SuggestedFix {
	pos := g.pass.Fset.Position(lockStmt.Pos())
	end := g.pass.Fset.Position(lockStmt.End())
	indent := strings.Repeat("\t", pos.Column-1)
	return &SuggestedFix{
		Message: "insert defer " + path + "." + op + "() after the Lock",
		Edits: []TextEdit{{
			File:    end.Filename,
			Start:   end.Offset,
			End:     end.Offset,
			NewText: "\n" + indent + "defer " + path + "." + op + "()",
		}},
	}
}
