package analysis

import (
	"go/ast"
	"go/types"
)

// HMRoutingAnalyzer enforces the Health Monitor's routing contract (paper
// Sect. 5): every reported error produces an hm.Decision carrying the
// recovery action the integrator configured, and that decision must be
// acted on. Two failure shapes are flagged:
//
//   - Dropped decisions: calling a Report* method as a statement, or
//     assigning its result to the blank identifier, silently discards the
//     configured recovery action — the error was "handled" by nobody.
//
//   - Ad-hoc logging: passing a just-obtained hm.Decision straight into
//     fmt/log printing detours the error around the recovery orchestrator.
//     (Rendering a decision that was already applied — e.g. in a trace
//     event's detail string — is fine; only the print-instead-of-apply
//     pattern is flagged.)
//
// Key: hmdrop.
var HMRoutingAnalyzer = &Analyzer{
	Name: "airhmrouting",
	Doc:  "Health Monitor decisions must be applied or escalated, never dropped or detoured into ad-hoc logging",
	Run:  runHMRouting,
}

const hmPkgPath = "air/internal/hm"

func runHMRouting(pass *Pass) {
	if pass.Pkg.Path() == hmPkgPath {
		return // the monitor's own internals construct and route decisions freely
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && isHMDecisionCall(pass, call) {
					pass.Reportf(call.Pos(), KeyHMDrop,
						"Health Monitor decision dropped: the configured recovery action is discarded; apply it or route it to the recovery orchestrator")
				}
			case *ast.AssignStmt:
				for i, lhs := range stmt.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" || len(stmt.Lhs) != len(stmt.Rhs) {
						continue
					}
					if call, ok := stmt.Rhs[i].(*ast.CallExpr); ok && isHMDecisionCall(pass, call) {
						pass.Reportf(stmt.Pos(), KeyHMDrop,
							"Health Monitor decision assigned to the blank identifier; apply it or route it to the recovery orchestrator")
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pass, stmt); fn != nil && fn.Pkg() != nil && isPrintPkg(fn.Pkg().Path()) {
					for _, arg := range stmt.Args {
						if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isHMDecisionCall(pass, call) {
							pass.Reportf(arg.Pos(), KeyHMDrop,
								"Health Monitor decision logged ad hoc instead of being applied; report through the Health Monitor or recovery orchestrator")
						}
					}
				}
			}
			return true
		})
	}
}

func isPrintPkg(path string) bool { return path == "fmt" || path == "log" }

// isHMDecisionCall reports whether the call's (single) result is an
// hm.Decision.
func isHMDecisionCall(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Decision" && obj.Pkg() != nil && obj.Pkg().Path() == hmPkgPath
}

// calleeFunc resolves a call's static callee, nil for dynamic calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}
