package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestHMRouting(t *testing.T) {
	analysistest.Run(t, analysis.HMRoutingAnalyzer,
		"example.com/app",
	)
}
