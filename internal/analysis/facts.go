package analysis

import (
	"bytes"
	"encoding/gob"
	"go/ast"
	"go/types"
	"strings"
)

// Facts are the analyzer-exported observations that flow along the import
// graph, serialized into the vet facts file (the .vetx the go command
// threads from each package's analysis to its dependents). The suite needs
// exactly one fact class today — "this function is //air:hotpath" — so Facts
// is a flat set of function keys; the gob encoding keeps the driver protocol
// compatible if more classes are added.
type Facts struct {
	// Hotpath holds FuncKey strings of //air:hotpath-annotated functions.
	Hotpath map[string]bool
}

// Merge folds other into f.
func (f *Facts) Merge(other Facts) {
	if len(other.Hotpath) == 0 {
		return
	}
	if f.Hotpath == nil {
		f.Hotpath = map[string]bool{}
	}
	for k := range other.Hotpath {
		f.Hotpath[k] = true
	}
}

// Encode serializes the facts for a vetx file.
func (f Facts) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFacts deserializes a vetx file. Empty input decodes to empty facts,
// so placeholder vetx files written for skipped packages are valid.
func DecodeFacts(data []byte) (Facts, error) {
	var f Facts
	if len(data) == 0 {
		return f, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return Facts{}, err
	}
	return f, nil
}

// FuncKey canonicalizes a declared function as "pkgpath.Name" for
// package-level functions and "pkgpath.Recv.Name" for methods (pointerness
// of the receiver is erased: an annotation covers the one function that
// exists). The same key is derivable from syntax alone (SyntaxFuncKey), so
// fact harvesting over dependencies needs no type checking.
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			key += name + "."
		}
	}
	return key + fn.Name()
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.Alias:
		return n.Obj().Name()
	}
	return ""
}

// SyntaxFuncKey derives the same key as FuncKey from an *ast.FuncDecl.
func SyntaxFuncKey(pkgPath string, decl *ast.FuncDecl) string {
	key := pkgPath + "."
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		if name := astRecvTypeName(decl.Recv.List[0].Type); name != "" {
			key += name + "."
		}
	}
	return key + decl.Name.Name
}

func astRecvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver [T]
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// airModulePrefix identifies this repository's packages: facts only flow
// between them, and several analyzers key their package-class tables on
// these paths.
const airModulePrefix = "air/"

// isAirPackage reports whether the import path belongs to this module.
func isAirPackage(path string) bool {
	return path == "air" || strings.HasPrefix(path, airModulePrefix)
}

// IsAirPackage is isAirPackage for drivers: the airlint driver analyzes (and
// flows facts between) this module's packages only.
func IsAirPackage(path string) bool { return isAirPackage(path) }
