package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChanAnalyzer is airchan: channel ownership discipline. A channel is closed
// only by its owner — the function that made it (including goroutine
// literals inside that function) or a designated stop path (a method whose
// name marks shutdown: Close, Stop, Shutdown, kill, drain, ...). After a
// close, no send or second close of the same channel may be reachable on
// the same path. And a goroutine's infinite for/select service loop must
// carry a case that exits the loop, or the goroutine can never be shut
// down. Closing someone else's channel is the classic distributed-ownership
// bug: the next send panics in a package that never called close.
var ChanAnalyzer = &Analyzer{
	Name: "airchan",
	Doc:  "channels are closed only by their owner; no send reachable after close; service loops carry a stop case",
	Run:  runChan,
}

// stopNames marks function names that constitute a shutdown path, allowed
// to close channels they do not own locally.
var stopNames = []string{"close", "stop", "shutdown", "kill", "drain", "quit", "cancel", "finish", "abort"}

func isStopName(name string) bool {
	lower := strings.ToLower(name)
	for _, s := range stopNames {
		if strings.Contains(lower, s) {
			return true
		}
	}
	return false
}

func runChan(pass *Pass) {
	if !isAirPackage(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &chanWalker{pass: pass, fn: fd}
			st := &chanState{closed: map[string]bool{}, owned: map[types.Object]bool{}}
			c.walkStmt(fd.Body, st)
		}
	}
}

type chanState struct {
	closed map[string]bool       // rendered channel paths closed on this path
	owned  map[types.Object]bool // locals bound to a make() or fresh struct in this function
}

func (s *chanState) clone() *chanState {
	c := &chanState{closed: map[string]bool{}, owned: map[types.Object]bool{}}
	for k := range s.closed {
		c.closed[k] = true
	}
	for k := range s.owned {
		c.owned[k] = true
	}
	return c
}

// merge keeps only facts true on both arms (sound for the after-close
// checks: a channel counts as closed only when every path closed it).
func (s *chanState) merge(alt *chanState) {
	for k := range s.closed {
		if !alt.closed[k] {
			delete(s.closed, k)
		}
	}
	for k := range s.owned {
		if !alt.owned[k] {
			delete(s.owned, k)
		}
	}
}

type chanWalker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (c *chanWalker) walkStmt(stmt ast.Stmt, st *chanState) {
	if stmt == nil {
		return
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			c.walkStmt(inner, st)
		}
	case *ast.ExprStmt:
		c.checkClose(s.X, st, false)
	case *ast.DeferStmt:
		c.checkClose(s.Call, st, true)
	case *ast.SendStmt:
		if path := renderPath(s.Chan); path != "" && st.closed[path] {
			c.pass.Reportf(s.Pos(), KeyChan, "send on %s after close(%s) on this path: the send panics", path, path)
		}
	case *ast.AssignStmt:
		c.trackOwned(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						if i < len(vs.Names) && isFreshExpr(v) {
							if obj := c.pass.Info.Defs[vs.Names[i]]; obj != nil {
								st.owned[obj] = true
							}
						}
					}
				}
			}
		}
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// The goroutine shares the enclosing function's ownership, but
			// runs its own path: closed-state diverges.
			c.checkServiceLoop(lit.Body)
			c.walkStmt(lit.Body, st.clone())
		}
	case *ast.IfStmt:
		c.walkStmt(s.Init, st)
		thenSt := st.clone()
		c.walkStmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			c.walkStmt(s.Else, elseSt)
			merged := thenSt
			if terminates(s.Body) {
				merged = elseSt
			} else if !terminates(s.Else) {
				merged.merge(elseSt)
			}
			*st = *merged
			return
		}
		if !terminates(s.Body) {
			entry := st.clone()
			*st = *thenSt
			st.merge(entry)
		}
	case *ast.ForStmt:
		c.walkStmt(s.Body, st.clone())
	case *ast.RangeStmt:
		c.walkStmt(s.Body, st.clone())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := stmt.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		entry := st.clone()
		for _, cl := range body.List {
			arm := entry.clone()
			switch cc := cl.(type) {
			case *ast.CaseClause:
				for _, inner := range cc.Body {
					c.walkStmt(inner, arm)
				}
			case *ast.CommClause:
				c.walkStmt(cc.Comm, arm)
				for _, inner := range cc.Body {
					c.walkStmt(inner, arm)
				}
			}
			st.merge(arm)
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, st)
	}
}

// terminates reports whether a statement (if-arm) always leaves the
// enclosing flow: its last statement is a return/branch/panic.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1])
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// trackOwned records locals bound to freshly made channels (or fresh
// structs whose channel fields the function therefore owns), and clears
// closed-state on reassignment.
func (c *chanWalker) trackOwned(s *ast.AssignStmt, st *chanState) {
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		delete(st.closed, id.Name)
		if len(s.Lhs) == len(s.Rhs) && isFreshExpr(s.Rhs[i]) {
			st.owned[obj] = true
		}
	}
}

// checkClose handles a close(ch) in statement or defer position.
func (c *chanWalker) checkClose(e ast.Expr, st *chanState, deferred bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return
	}
	if obj := c.pass.Info.Uses[id]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return // a shadowing close() function, not the builtin
		}
	}
	arg := call.Args[0]
	path := renderPath(arg)
	if path != "" && st.closed[path] {
		c.pass.Reportf(call.Pos(), KeyChan, "close(%s) after an earlier close on this path: closing twice panics", path)
	}
	if !c.ownsChan(arg, st) {
		c.pass.Reportf(call.Pos(), KeyChan, "close(%s) outside the owning function or a stop path: only the maker (or a Close/Stop/Shutdown method) may close a channel", path)
	}
	if path != "" && !deferred {
		st.closed[path] = true
	}
}

// ownsChan reports whether this function owns the channel being closed: it
// (or its enclosing state) made it, the channel hangs off a freshly
// constructed struct, or the enclosing function is a designated stop path.
func (c *chanWalker) ownsChan(arg ast.Expr, st *chanState) bool {
	if isStopName(c.fn.Name.Name) {
		return true
	}
	g := &guardWalker{pass: c.pass}
	if root := g.rootIdent(arg); root != nil && st.owned[root] {
		return true
	}
	return false
}

// checkServiceLoop flags infinite for/select loops in goroutine bodies with
// no case that can exit the loop.
func (c *chanWalker) checkServiceLoop(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		var sel *ast.SelectStmt
		for _, inner := range fs.Body.List {
			if s, ok := inner.(*ast.SelectStmt); ok {
				sel = s
				break
			}
		}
		if sel == nil {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			exits := false
			for _, inner := range cc.Body {
				ast.Inspect(inner, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.ReturnStmt, *ast.BranchStmt:
						exits = true
						return false
					case *ast.FuncLit:
						return false
					}
					return true
				})
				if exits {
					break
				}
			}
			if exits {
				return false // loop has a stop case; skip nested loops too
			}
		}
		c.pass.Reportf(fs.Pos(), KeyChan, "goroutine service loop has no stop case: add a done/stop channel case that returns, or the goroutine cannot be shut down")
		return false
	})
}
