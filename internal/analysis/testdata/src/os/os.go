// Package os is a hermetic stub of the standard library's os package: just
// enough surface for the airdurable fixtures to type check offline.
package os

type FileMode uint32

type File struct{ name string }

func (f *File) Write(b []byte) (int, error)       { return len(b), nil }
func (f *File) WriteString(s string) (int, error) { return len(s), nil }
func (f *File) Sync() error                       { return nil }
func (f *File) Close() error                      { return nil }

func Create(name string) (*File, error)                            { return &File{name: name}, nil }
func OpenFile(name string, flag int, perm FileMode) (*File, error) { return &File{name: name}, nil }
func Rename(oldpath, newpath string) error                         { return nil }
func WriteFile(name string, data []byte, perm FileMode) error      { return nil }

const (
	O_RDONLY = 0
	O_WRONLY = 1
	O_RDWR   = 2
	O_CREATE = 64
	O_TRUNC  = 512
)
