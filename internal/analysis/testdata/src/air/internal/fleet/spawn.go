// Package fleet is the airspawn fixture: every goroutine outside the tick
// domain must be join-able through a WaitGroup, a stop channel, or a
// context.
package fleet

import (
	"context"
	"sync"
	"time"
)

// --- clean patterns -------------------------------------------------------

func waitGroupPool() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func stopChannel(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

func ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func deferClose() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

func rangesOverDone(done chan struct{}) {
	go func() {
		for range done {
		}
	}()
}

// named callee declared in this package: its body is inspected.
func namedJoinable(stop chan struct{}) {
	go waitStop(stop)
}

func waitStop(stop chan struct{}) { <-stop }

// dynamic callee, but the spawner hands it a channel it can join on.
func dynamicWithChan(g func(chan struct{}), stop chan struct{}) {
	go g(stop)
}

// --- violations -----------------------------------------------------------

func leakyLiteral() {
	go func() {}() // want `goroutine is not join-able`
}

func namedLeak() {
	go bgWork() // want `goroutine bgWork is not join-able`
}

func bgWork() {}

func externalCallee() {
	go time.Sleep(1) // want `not visibly join-able`
}

func dynamicLeak(f func()) {
	go f() // want `not visibly join-able`
}

// --- documented escape hatch ---------------------------------------------

func allowed() {
	//air:allow(spawn): process-lifetime fire-and-forget, demonstrated escape hatch
	go func() {}()
}
