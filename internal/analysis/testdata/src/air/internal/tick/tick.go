// Package tick is a fixture stub of air/internal/tick.
package tick

type Ticks int64
