// Package campaign is an airdeterminism fixture for the seeded domain:
// results must not read the wall clock or global rand, but internal
// goroutine pools are legitimate (contained by construction, covered by the
// race detector).
package campaign

import (
	"math/rand"
	"time"
)

func worker(jobs chan int) {}

func run() {
	start := time.Now() // want `time\.Now reads the wall clock`
	_ = start
	_ = rand.Int() // want `rand\.Int draws from global math/rand state`
	jobs := make(chan int)
	go worker(jobs) // seeded domain: goroutine pools allowed
}
