// Package ipc is an airpartition fixture for the raw-event discipline on
// the emission path: events are built directly at the emission call site,
// never stored half-built.
package ipc

import "air/internal/obs"

type channel struct {
	em obs.Emitter
}

func (c *channel) send(now int64) {
	c.em.Emit(obs.Event{Time: now, Kind: 1}) // direct emission: fine
	e := obs.Event{Time: now}                // want `obs\.Event must be constructed directly at its emission call site`
	e.Kind = 2
	c.em.Emit(e)
}
