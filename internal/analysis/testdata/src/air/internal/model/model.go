// Package model is an airpartition fixture: a layer-1 package importing the
// layer-2 observability spine reaches up the stack.
package model

import "air/internal/obs" // want `layering violation: air/internal/model \(layer 1\) imports air/internal/obs \(layer 2\)`

func uses() obs.Event { return obs.Event{} } // want `constructs a raw obs.Event`
