// Package chanfix is the airchan fixture: channels are closed only by
// their owner, nothing sends after a close, and goroutine service loops
// carry a stop case.
package chanfix

// --- clean patterns -------------------------------------------------------

func owner() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	ch <- 1
	close(ch)
}

type box struct{ done chan struct{} }

func newBox() *box {
	return &box{done: make(chan struct{})}
}

// Stop is a designated stop path: it may close the channel it shuts down.
func (b *box) Stop() {
	close(b.done)
}

// freshOwner exclusively owns the box it just built, channels included.
func freshOwner() *box {
	b := &box{done: make(chan struct{})}
	close(b.done)
	return b
}

// branchClose closes on exactly one path: no double close.
func branchClose(p bool) {
	ch := make(chan int)
	if p {
		close(ch)
		return
	}
	close(ch)
}

func serviceLoopWithStop(work chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case w := <-work:
				_ = w
			case <-stop:
				return
			}
		}
	}()
}

// --- violations -----------------------------------------------------------

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `closing twice panics`
}

func sendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1 // want `the send panics`
}

func handoffParam(ch chan int) {
	close(ch) // want `outside the owning function`
}

func (b *box) misuse() {
	close(b.done) // want `outside the owning function`
}

func serviceLoopNoStop(work chan int) {
	go func() {
		for { // want `no stop case`
			select {
			case w := <-work:
				_ = w
			}
		}
	}()
}

// --- documented escape hatch ---------------------------------------------

func allowedHandoff(ch chan int) {
	//air:allow(chan): ownership transferred by contract, demonstrated escape hatch
	close(ch)
}
