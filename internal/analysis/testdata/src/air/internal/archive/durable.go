// Package archive is the airdurable fixture: durable state is published
// fsync-before-rename, os.WriteFile never qualifies, and framed handles are
// appended through the framing encoder only.
package archive

import "os"

type seg struct {
	f *os.File
}

// --- clean patterns -------------------------------------------------------

func publishOK(dir string) error {
	tmp := dir + "/manifest.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dir+"/manifest")
}

// --- violations -----------------------------------------------------------

func publishNoSync(dir string) error {
	tmp := dir + "/m.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write([]byte("x"))
	f.Close()
	return os.Rename(tmp, dir+"/m") // want `without a preceding Sync`
}

func publishSyncAfterRename(dir string) {
	tmp := dir + "/n.tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	f.Write([]byte("x"))
	os.Rename(tmp, dir+"/n") // want `without a preceding Sync`
	f.Sync()
	f.Close()
}

func writeFileNeverSyncs(dir string) error {
	return os.WriteFile(dir+"/idx", []byte("x"), 0o644) // want `os.WriteFile cannot fsync`
}

func (s *seg) rawAppend(b []byte) {
	s.f.Write(b) // want `bypasses the framing encoder`
}

// --- documented escape hatch ---------------------------------------------

// appendFrame is the framing encoder itself: the one blessed raw write.
func (s *seg) appendFrame(frame []byte) {
	//air:allow(durable): this is the framing encoder; frame carries the CRC header
	s.f.Write(frame)
}
