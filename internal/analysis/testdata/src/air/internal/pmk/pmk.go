// Package pmk is a fixture stub of air/internal/pmk, an import target for
// the airpartition layering fixtures.
package pmk

type Heir struct{ Idle bool }
