// Package pos is an airpartition fixture: the POS reaching into PMK
// internals violates the spatial-separation rule.
package pos

import (
	"air/internal/pmk" // want `forbidden import of air/internal/pmk: the POS runs inside a partition`
	"air/internal/tick"
)

func uses() (pmk.Heir, tick.Ticks) { return pmk.Heir{}, 0 }
