// Package hm is a fixture stub of air/internal/hm: the Decision type and a
// Monitor with the Report* surface the airhmrouting fixtures exercise.
package hm

type ErrorCode int

type Decision struct {
	Action int
}

type Monitor struct{}

func (m *Monitor) ReportProcess(p, process string, code ErrorCode, msg string) Decision {
	return Decision{}
}

func (m *Monitor) ReportPartition(p string, code ErrorCode, msg string) Decision {
	return Decision{}
}

func (m *Monitor) ReportModule(code ErrorCode, msg string) Decision {
	return Decision{}
}
