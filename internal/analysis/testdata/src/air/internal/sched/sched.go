// Package sched is an airdeterminism fixture: a tick-domain package
// exercising every nondeterminism channel the analyzer guards.
package sched

import (
	"math/rand"
	"time"
)

type table struct{ prio map[string]int }

func helper() {}

func bad(t table) {
	_ = time.Now()              // want `time\.Now reads the wall clock`
	_ = time.Since(time.Time{}) // want `time\.Since reads the wall clock`
	time.Sleep(1)               // want `time\.Sleep reads the wall clock`
	_ = rand.Intn(4)            // want `rand\.Intn draws from global math/rand state`
	_ = rand.Float64()          // want `rand\.Float64 draws from global math/rand state`
	go helper()                 // want `go statement in tick-domain package`
	ch := make(chan int)
	select {
	case <-ch:
	default: // want `select with default races on channel readiness`
	}
	for k := range t.prio { // want `map iteration order is nondeterministic`
		_ = k
	}
}

func good(t table) {
	r := rand.New(rand.NewSource(42)) // seeded, locally owned: allowed
	_ = r.Intn(4)
	var d time.Duration // using time's types (not its clock) is fine
	_ = d
	keys := []string{"a", "b"}
	for _, k := range keys { // slice iteration is ordered
		_ = t.prio[k]
	}
}

// allowedFold documents an order-insensitive fold with the escape hatch.
func allowedFold(t table) int {
	sum := 0
	for _, v := range t.prio { //air:allow(maprange): commutative sum, order-insensitive
		sum += v
	}
	return sum
}
