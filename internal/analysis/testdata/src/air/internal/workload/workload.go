// Package workload is an airpartition fixture: partition application code
// must not reach the module scheduler or the schedulability analyzer.
package workload

import (
	"air/internal/pmk"     // want `forbidden import of air/internal/pmk: partition application code`
	_ "air/internal/sched" // want `forbidden import of air/internal/sched: partition application code`
	"air/internal/tick"
)

func uses() (pmk.Heir, tick.Ticks) {
	return pmk.Heir{}, 0
}
