// Package plainio is outside the durable set: report artifacts may use
// os.WriteFile freely; only the packages that own crash-recoverable state
// carry the fsync-before-publish obligation.
package plainio

import "os"

func writeReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
