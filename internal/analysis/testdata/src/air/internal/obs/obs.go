// Package obs is a fixture stub of air/internal/obs: the Event wire type,
// an Emitter with an //air:hotpath Emit, and one deliberately cold function
// for the cross-package fact tests.
package obs

type Event struct {
	Time      int64
	Kind      int
	Partition string
	Latency   int64
}

type Emitter struct{ core int }

//air:hotpath
func (em Emitter) Emit(e Event) {}

// Flush is deliberately not //air:hotpath.
func Flush() {}
