// Package context is a hermetic stub of the standard library's context
// package: just enough surface for the airspawn fixtures to type check
// offline.
package context

type Context interface {
	Done() <-chan struct{}
}

func Background() Context { return background{} }

type background struct{}

func (background) Done() <-chan struct{} { return nil }
