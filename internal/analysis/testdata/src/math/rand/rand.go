// Package rand is a hermetic stub of math/rand for the airlint fixtures.
package rand

type Source struct{}

type Rand struct{}

func NewSource(seed int64) Source { return Source{} }
func New(src Source) *Rand        { return &Rand{} }

func (*Rand) Intn(n int) int             { return 0 }
func (*Rand) Float64() float64           { return 0 }
func Intn(n int) int                     { return 0 }
func Int() int                           { return 0 }
func Float64() float64                   { return 0 }
func Shuffle(n int, swap func(i, j int)) {}
