// Package sync is a hermetic stub of the standard library's sync package
// for the airlint fixtures.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}
