// Package sync is a hermetic stub of the standard library's sync package
// for the airlint fixtures.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{ count int }

func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done()         {}
func (wg *WaitGroup) Wait()         {}
