// Package strconv is a hermetic stub of the standard library's strconv
// package for the airlint fixtures.
package strconv

func Itoa(i int) string { return "" }
