// Package app is the airhmrouting fixture: Health Monitor decisions must be
// applied or escalated, never dropped or detoured into ad-hoc logging.
package app

import (
	"fmt"
	"log"

	"air/internal/hm"
)

func apply(d hm.Decision) {}

func handle(m *hm.Monitor) {
	m.ReportPartition("p1", 1, "boom")              // want `Health Monitor decision dropped`
	_ = m.ReportProcess("p1", "t", 2, "boom")       // want `decision assigned to the blank identifier`
	fmt.Println(m.ReportPartition("p1", 1, "boom")) // want `decision logged ad hoc`
	log.Printf("%v", m.ReportModule(3, "cfg"))      // want `decision logged ad hoc`

	d := m.ReportPartition("p1", 1, "boom") // captured and applied: fine
	apply(d)
	fmt.Println(d) // rendering an already-applied decision is fine
}

func suppressed(m *hm.Monitor) {
	//air:allow(hmdrop): ActionIgnore table entry, decision is a no-op by configuration
	m.ReportModule(3, "cfg")
}
