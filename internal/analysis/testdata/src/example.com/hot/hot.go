// Package hot is the airhotpath fixture: one annotated function per finding
// class, the blessed patterns that must stay silent, and the cross-package
// fact flow against the air/internal/obs stub.
package hot

import (
	"fmt"
	"strconv"
	"sync"

	"air/internal/obs"
)

type pair struct{ a, b int }

type counters struct {
	mu   sync.Mutex
	vals []int
	em   obs.Emitter
}

func (c *counters) helper() {}

//air:hotpath
func (c *counters) tick(v int) {
	c.mu.Lock() // sync.Mutex is on the allocation-free stdlib allowlist
	p := pair{a: v}
	_ = p                         // value composite literal: stack, fine
	c.em.Emit(obs.Event{Time: 1}) // cross-package //air:hotpath callee: fine
	c.vals = append(c.vals, v)    // want `append may grow its backing array`
	m := map[string]int{}         // want `map/slice literal allocates`
	_ = m
	s := []int{v} // want `map/slice literal allocates`
	_ = s
	pp := &pair{a: v} // want `address-taken composite literal`
	_ = pp
	f := func() {} // want `closure in hot path`
	_ = f
	fmt.Println(v)      // want `fmt\.Println boxes its operands`
	_ = strconv.Itoa(v) // want `not on the allocation-free stdlib allowlist`
	obs.Flush()         // want `air/internal/obs\.Flush, which is not //air:hotpath`
	c.helper()          // want `calls helper, which is not //air:hotpath`
	c.mu.Unlock()
}

//air:hotpath
func box(v int, sink *counters) any {
	var x any = v // want `value of type int is boxed into interface`
	_ = x
	var cb func()
	cb()     // want `call through function-typed value cb`
	return v // want `value of type int is boxed into interface`
}

//air:hotpath
func strings2(a, b string, bs []byte) {
	_ = a + b      // want `string concatenation allocates`
	_ = []byte(a)  // want `conversion between string and \[\]byte copies`
	_ = string(bs) // want `conversion between string and \[\]byte copies`
}

// coldInit is hot-annotated but wholly amortized: the function-scoped allow
// covers the growth path.
//
//air:hotpath
//air:allow(alloc): first-seen growth is amortized across the run
func coldInit(c *counters, v int) {
	c.vals = append(c.vals, v)
}

//air:hotpath
func lineAllow(c *counters, v int) {
	c.vals = append(c.vals, v) //air:allow(alloc): ring is preallocated at attach time
}

// notHot is unannotated: nothing in it is checked.
func notHot() {
	_ = fmt.Sprintf("%d", 7)
}
