// Package plain is outside every airlint determinism domain: wall-clock and
// concurrency use is unconstrained here.
package plain

import "time"

func fine() {
	_ = time.Now()
	go func() {}()
}
