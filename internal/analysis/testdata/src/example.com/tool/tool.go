// Package tool is an airpartition fixture: tooling outside the emission
// path may consume spine events but never fabricate them.
package tool

import "air/internal/obs"

func fabricate(em obs.Emitter) {
	em.Emit(obs.Event{Kind: 3}) // want `package example.com/tool constructs a raw obs\.Event`
}

func consume(e obs.Event) int64 { return e.Time } // consuming events is fine
