// Package directives is the airallow fixture: the //air: directive grammar
// is itself linted, so suppressions cannot silently rot.
package directives

//air:frobnicate // want `unknown //air: directive "frobnicate"`
func a() {}

//air:allow(nosuchkey): because // want `unknown //air:allow key "nosuchkey"`
func b() {}

//air:allow(maprange) // want `needs a documented reason`
func c() {}

//air:allow // want `//air:allow needs a key`
func d() {}

func e() {
	_ = 1 //air:hotpath // want `must be in a function's doc comment`
}

//air:hotpath
func hot() {}

// wellFormed carries a valid, documented suppression: no findings.
//
//air:allow(maprange): demonstration of a well-formed function-scoped allow
func wellFormed() {}

//air:guard // want `//air:guard needs the sibling mutex field`
func g1() {}

func g2() {
	_ = 1 //air:guard(mu) // want `must be attached to a struct field`
}

//air:locked // want `//air:locked needs the held mutex field`
func g3() {}

//air:locked(mu) // want `must be in a method's doc comment`
func g4() {}

type lockedRecv struct{ mu int }

// m documents a well-placed //air:locked: no airallow finding (airguard
// owns the semantic checks).
//
//air:locked(mu)
func (l *lockedRecv) m() {}

type guardedField struct {
	mu int
	//air:guard(mu)
	v int
}
