// Package directives is the airallow fixture: the //air: directive grammar
// is itself linted, so suppressions cannot silently rot.
package directives

//air:frobnicate // want `unknown //air: directive "frobnicate"`
func a() {}

//air:allow(nosuchkey): because // want `unknown //air:allow key "nosuchkey"`
func b() {}

//air:allow(maprange) // want `needs a documented reason`
func c() {}

//air:allow // want `//air:allow needs a key`
func d() {}

func e() {
	_ = 1 //air:hotpath // want `must be in a function's doc comment`
}

//air:hotpath
func hot() {}

// wellFormed carries a valid, documented suppression: no findings.
//
//air:allow(maprange): demonstration of a well-formed function-scoped allow
func wellFormed() {}
