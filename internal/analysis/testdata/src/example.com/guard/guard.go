// Package guard is the airguard fixture: flow-sensitive lock-set tracking
// over //air:guard(mu)-annotated fields, every diagnostic class seeded.
package guard

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the guarded counter.
	//
	//air:guard(mu)
	n int
}

type stats struct {
	mu   sync.RWMutex
	hits int //air:guard(mu)
}

type broken struct {
	//air:guard(lock)
	x int // want `struct has no sibling field "lock"`
}

type notMutex struct {
	mu int
	//air:guard(mu)
	y int // want `not a sync.Mutex`
}

// --- clean patterns -------------------------------------------------------

func (c *counter) ok() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// drain exercises the unlock/relock shape: lock-free work between two
// critical sections.
func (c *counter) drain() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	v *= 2
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	return v
}

func (c *counter) branches(p bool) {
	c.mu.Lock()
	if p {
		c.n++
	} else {
		c.n--
	}
	c.mu.Unlock()
}

func (s *stats) read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits
}

func (s *stats) write() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

// newCounter owns its fresh value exclusively: the constructor pattern
// needs no lock.
func newCounter() *counter {
	c := &counter{}
	c.n = 7
	c.bump()
	return c
}

// --- violations -----------------------------------------------------------

func (c *counter) readNoLock() int {
	return c.n // want `read of c.n without holding c.mu`
}

func (c *counter) writeNoLock() {
	c.n = 1 // want `write to c.n without holding c.mu`
}

func (s *stats) writeUnderRLock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hits++ // want `under RLock: writes need the exclusive Lock`
}

func (c *counter) earlyReturn(p bool) {
	c.mu.Lock()
	if p {
		return // want `c.mu still held when the function returns`
	}
	c.mu.Unlock()
}

func (c *counter) heldAtEnd() {
	c.mu.Lock()
	c.n = 2
} // want `c.mu still held when the function returns`

func (c *counter) doubleDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.mu.Unlock() // want `unlocked twice`
	c.n = 3
}

func (c *counter) unlockNotHeld() {
	c.mu.Unlock() // want `c.mu is not held on this path`
}

func (c *counter) deadlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want `self-deadlock`
	c.n = 4
}

// spawned goroutines do not inherit the spawner's locks.
func (c *counter) spawns() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `write to c.n without holding c.mu`
	}()
}

// --- //air:locked ---------------------------------------------------------

// bump assumes the caller holds mu.
//
//air:locked(mu)
func (c *counter) bump() { c.n++ }

func (c *counter) callsBumpLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

func (c *counter) callsBumpUnlocked() {
	c.bump() // want `requires c.mu held`
}

//air:locked(lock)
func (c *counter) badLocked() {} // want `receiver type has no mutex field "lock"`

// --- documented escape hatch ---------------------------------------------

func (c *counter) allowed() int {
	//air:allow(guard): single-writer snapshot read, demonstrated escape hatch
	return c.n
}
