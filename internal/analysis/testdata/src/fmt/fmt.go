// Package fmt is a hermetic stub of the standard library's fmt package for
// the airlint fixtures.
package fmt

func Sprintf(format string, a ...any) string      { return "" }
func Printf(format string, a ...any) (int, error) { return 0, nil }
func Println(a ...any) (int, error)               { return 0, nil }
func Errorf(format string, a ...any) error        { return nil }
