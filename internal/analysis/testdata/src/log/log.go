// Package log is a hermetic stub of the standard library's log package for
// the airlint fixtures.
package log

func Printf(format string, v ...any) {}
func Println(v ...any)               {}
