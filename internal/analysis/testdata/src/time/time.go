// Package time is a hermetic stub of the standard library's time package:
// just enough surface for the airlint fixtures to type check offline.
package time

type Time struct{ ns int64 }

type Duration int64

func Now() Time                    { return Time{} }
func Since(t Time) Duration        { return 0 }
func Until(t Time) Duration        { return 0 }
func Sleep(d Duration)             {}
func (t Time) Sub(u Time) Duration { return 0 }
func (t Time) Add(d Duration) Time { return t }
