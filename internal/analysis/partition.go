package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// PartitionAnalyzer is the paper's spatial-separation rule applied to the
// codebase itself: the layers of the architecture (Fig. 1 — application /
// APEX / POS / PAL / PMK) map onto packages, and a layer may only reach
// down, never sideways or up. Two checks:
//
//  1. Import layering: every air/internal package has a rank; importing a
//     package of the same or higher rank is a violation, as are a few
//     explicitly forbidden pairs called out by the architecture (the POS
//     and APEX must not see PMK internals; partition application code must
//     not see the module schedulers).
//
//  2. Raw-event discipline: obs.Event values are the spine's wire format.
//     Only the emitting layers may construct them, and only directly at an
//     emission call site — anything else (tooling, workloads, storage of
//     half-built events) must go through the spine's typed APIs, so every
//     event in a trace is attributable to the layer that emitted it.
//
// Keys: layering, rawevent.
var PartitionAnalyzer = &Analyzer{
	Name: "airpartition",
	Doc:  "enforce the spatial-separation layering of imports and the obs.Event construction discipline",
	Run:  runPartition,
}

// layerRank orders the architecture's layers bottom-up. A package may import
// only strictly lower ranks. Packages absent from the table (cmd/*, the air
// facade, examples, vitral, iodev) are unconstrained importers, but are
// still constrained as importees by the ranks of what they import — and by
// the raw-event rule.
var layerRank = map[string]int{
	"air/internal/tick":      0,
	"air/internal/vitral":    0,
	"air/internal/iodev":     0,
	"air/internal/model":     1,
	"air/internal/obs":       2,
	"air/internal/mmu":       3,
	"air/internal/sched":     3,
	"air/internal/apex":      3,
	"air/internal/hm":        3,
	"air/internal/ipc":       3,
	"air/internal/pmk":       3,
	"air/internal/pos":       3,
	"air/internal/recovery":  3,
	"air/internal/timeline":  3,
	"air/internal/archive":   3,
	"air/internal/pal":       4,
	"air/internal/core":      5,
	"air/internal/multicore": 6,
	"air/internal/workload":  6,
	"air/internal/config":    7,
	"air/internal/campaign":  8,
	"air/internal/fleet":     9,
	"air/internal/report":    9,
}

// forbiddenImports are architecture rules stronger than the rank order:
// pairs the paper's separation argument singles out. Redundant rank
// violations are kept here too so the diagnostic can cite the specific rule.
var forbiddenImports = map[string]map[string]string{
	"air/internal/pos": {
		"air/internal/pmk": "the POS runs inside a partition; it must not see PMK scheduler internals",
	},
	"air/internal/apex": {
		"air/internal/pmk": "the APEX interface is partition-side; it must not see PMK scheduler internals",
	},
	"air/internal/workload": {
		"air/internal/sched": "partition application code must not reach the schedulability analyzer",
		"air/internal/pmk":   "partition application code must not reach the module scheduler",
	},
}

// emitPath lists the packages allowed to construct raw obs.Event values:
// the layers that own an emission point on the spine.
var emitPath = map[string]bool{
	"air/internal/obs":       true,
	"air/internal/pmk":       true,
	"air/internal/pos":       true,
	"air/internal/ipc":       true,
	"air/internal/hm":        true,
	"air/internal/pal":       true,
	"air/internal/core":      true,
	"air/internal/multicore": true,
	"air/internal/recovery":  true,
	"air/internal/timeline":  true,
	"air/internal/fleet":     true,
}

const obsPkgPath = "air/internal/obs"

func runPartition(pass *Pass) {
	path := pass.Pkg.Path()
	checkLayering(pass, path)
	checkRawEvents(pass, path)
}

func checkLayering(pass *Pass, path string) {
	rank, ranked := layerRank[path]
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !isAirPackage(target) {
				continue
			}
			if reason, ok := forbiddenImports[path][target]; ok {
				pass.Reportf(imp.Pos(), KeyLayering, "forbidden import of %s: %s", target, reason)
				continue
			}
			if !ranked {
				continue
			}
			if tRank, ok := layerRank[target]; ok && tRank >= rank {
				pass.Reportf(imp.Pos(), KeyLayering,
					"layering violation: %s (layer %d) imports %s (layer %d); a layer may only reach strictly down",
					path, rank, target, tRank)
			}
		}
	}
}

// checkRawEvents flags obs.Event composite literals outside the emission
// path, and — inside it — literals that are not the direct argument of a
// call (i.e. events built up, stored, or mutated instead of being emitted
// where they are made). Package obs itself is free.
func checkRawEvents(pass *Pass, path string) {
	if path == obsPkgPath {
		return
	}
	for _, file := range pass.Files {
		// parent tracks each composite literal's enclosing node so "direct
		// call argument" is decidable.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isObsEvent(pass.Info.TypeOf(lit)) {
				return true
			}
			if !emitPath[path] {
				pass.Reportf(lit.Pos(), KeyRawEvent,
					"package %s constructs a raw obs.Event; only the emitting layers build spine events — consume them through the spine's typed APIs", path)
				return true
			}
			if !isDirectCallArg(stack, lit) {
				pass.Reportf(lit.Pos(), KeyRawEvent,
					"obs.Event must be constructed directly at its emission call site, not built up or stored")
			}
			return true
		})
	}
}

// isObsEvent reports whether t is the spine's Event type.
func isObsEvent(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath
}

// isDirectCallArg reports whether the innermost literal is an argument of
// the nearest enclosing call expression.
func isDirectCallArg(stack []ast.Node, lit *ast.CompositeLit) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range call.Args {
		if arg == lit {
			return true
		}
	}
	return false
}
