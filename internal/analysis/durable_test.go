package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestDurable(t *testing.T) {
	analysistest.Run(t, analysis.DurableAnalyzer,
		"air/internal/archive", // durable package: all three rules apply
		"air/internal/plainio", // outside the durable set: exempt
	)
}
