package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer statically guards the 0 allocs/op property of the
// module-tick spine. The CI benchmark gate samples that property at two
// points (BenchmarkModuleTickSatellite and its timeline variant); this
// analyzer enforces it structurally on every function annotated
// //air:hotpath: no allocation constructs (make, new, map/slice literals,
// address-taken composite literals, string concatenation, append growth),
// no closures, no fmt machinery, no interface boxing, and no calls that
// leave the hot-path set — a callee must itself be //air:hotpath (in this
// package or, via facts, in a dependency), a non-allocating builtin, or on
// the small allowlist of known allocation-free standard-library calls.
// Genuinely cold branches inside hot functions (first-seen state creation,
// failure paths) carry documented //air:allow suppressions, which is itself
// the point: every potential allocation on the spine is either impossible
// or annotated.
//
// Keys: alloc, closure, boxing, fmt, call.
var HotpathAnalyzer = &Analyzer{
	Name:        "airhotpath",
	Doc:         "functions marked //air:hotpath must be statically allocation-free and stay inside the hot-path call set",
	Run:         runHotpath,
	SyntaxFacts: hotpathSyntaxFacts,
}

// hotpathSyntaxFacts exports the package's //air:hotpath function keys.
func hotpathSyntaxFacts(pkgPath string, _ *token.FileSet, files []*ast.File) Facts {
	f := Facts{}
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && IsHotpath(fd) {
				if f.Hotpath == nil {
					f.Hotpath = map[string]bool{}
				}
				f.Hotpath[SyntaxFuncKey(pkgPath, fd)] = true
			}
		}
	}
	return f
}

// allowedStdlibPkgs may be called freely from hot paths: pure arithmetic.
var allowedStdlibPkgs = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// allowedStdlibFuncs are individually vetted allocation-free calls.
var allowedStdlibFuncs = map[string]bool{
	"sync.Mutex.Lock":      true,
	"sync.Mutex.Unlock":    true,
	"sync.Mutex.TryLock":   true,
	"sync.RWMutex.Lock":    true,
	"sync.RWMutex.Unlock":  true,
	"sync.RWMutex.RLock":   true,
	"sync.RWMutex.RUnlock": true,
}

func runHotpath(pass *Pass) {
	// Pass 1: the package's own hot set, by defining object.
	hotDecls := map[*ast.FuncDecl]bool{}
	hotObjs := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && IsHotpath(fd) {
				hotDecls[fd] = true
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					hotObjs[obj] = true
				}
			}
		}
	}
	if len(hotDecls) == 0 {
		return
	}
	// Pass 2: check each hot function body.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hotDecls[fd] || fd.Body == nil {
				continue
			}
			hp := &hotpathChecker{pass: pass, hotObjs: hotObjs, sig: pass.Info.Defs[fd.Name].Type().(*types.Signature)}
			ast.Inspect(fd.Body, hp.check)
		}
	}
}

type hotpathChecker struct {
	pass    *Pass
	hotObjs map[types.Object]bool
	sig     *types.Signature
}

func (hp *hotpathChecker) check(n ast.Node) bool {
	pass := hp.pass
	switch e := n.(type) {
	case *ast.FuncLit:
		pass.Reportf(e.Pos(), KeyClosure, "closure in hot path: function literals capture by reference and allocate")
		return false // don't descend; one finding per closure
	case *ast.GoStmt:
		pass.Reportf(e.Pos(), KeyAlloc, "go statement allocates a goroutine on the hot path")
	case *ast.CompositeLit:
		if t := pass.Info.TypeOf(e); t != nil {
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(e.Pos(), KeyAlloc, "map/slice literal allocates on the hot path")
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				pass.Reportf(e.Pos(), KeyAlloc, "address-taken composite literal escapes to the heap")
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t := pass.Info.TypeOf(e); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if !isConstant(pass, e) {
						pass.Reportf(e.Pos(), KeyAlloc, "string concatenation allocates on the hot path")
					}
				}
			}
		}
	case *ast.CallExpr:
		hp.checkCall(e)
	case *ast.AssignStmt:
		for i, lhs := range e.Lhs {
			if i < len(e.Rhs) && len(e.Lhs) == len(e.Rhs) {
				hp.checkBoxing(pass.Info.TypeOf(lhs), e.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		if len(e.Names) == len(e.Values) {
			for i, name := range e.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					hp.checkBoxing(obj.Type(), e.Values[i])
				}
			}
		}
	case *ast.ReturnStmt:
		results := hp.sig.Results()
		if len(e.Results) == results.Len() {
			for i, r := range e.Results {
				hp.checkBoxing(results.At(i).Type(), r)
			}
		}
	}
	return true
}

// isConstant reports whether the expression folds to a compile-time
// constant (constant string concatenation does not allocate at run time).
func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// checkBoxing flags a concrete value reaching an interface-typed slot.
func (hp *hotpathChecker) checkBoxing(dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	st := hp.pass.Info.TypeOf(src)
	if st == nil {
		return
	}
	if _, srcIface := st.Underlying().(*types.Interface); srcIface {
		return // interface-to-interface: no box
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, isPtr := st.Underlying().(*types.Pointer); isPtr {
		return // pointers box without allocating a copy
	}
	hp.pass.Reportf(src.Pos(), KeyBoxing, "value of type %s is boxed into interface %s on the hot path", st, dst)
}

func (hp *hotpathChecker) checkCall(call *ast.CallExpr) {
	pass := hp.pass
	// Resolve the callee identifier.
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		// Conversion to a type literal, e.g. []byte(s) or any(v).
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			hp.checkConversion(call, tv.Type)
			return
		}
		pass.Reportf(call.Pos(), KeyCall, "indirect call through a function value cannot be verified allocation-free")
		return
	}
	switch obj := pass.Info.Uses[id].(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "append":
			pass.Reportf(call.Pos(), KeyAlloc, "append may grow its backing array on the hot path; preallocate or document amortization with //air:allow(alloc)")
		case "print", "println":
			pass.Reportf(call.Pos(), KeyFmt, "built-in %s allocates; hot paths must not format", obj.Name())
		}
		return
	case *types.TypeName:
		// Conversion T(x): flag interface targets and string/[]byte copies.
		hp.checkConversion(call, obj.Type())
		return
	case *types.Func:
		hp.checkFuncCall(call, obj)
		return
	case *types.Var:
		pass.Reportf(call.Pos(), KeyCall, "call through function-typed value %s cannot be verified allocation-free", obj.Name())
		return
	case nil:
		// Conversion to a type literal, e.g. []byte(s): Uses has no entry.
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			hp.checkConversion(call, tv.Type)
		}
		return
	}
	// Boxing of arguments is checked for resolved and unresolved calls alike
	// via checkFuncCall; nothing further here.
}

func (hp *hotpathChecker) checkConversion(call *ast.CallExpr, target types.Type) {
	pass := hp.pass
	if len(call.Args) != 1 {
		return
	}
	if _, isIface := target.Underlying().(*types.Interface); isIface {
		hp.checkBoxing(target, call.Args[0])
		return
	}
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isStringByteConv(target, src) {
		pass.Reportf(call.Pos(), KeyAlloc, "conversion between string and []byte copies on the hot path")
	}
}

func isStringByteConv(a, b types.Type) bool {
	return (isString(a) && isByteSlice(b)) || (isByteSlice(a) && isString(b))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && e.Kind() == types.Byte
}

func (hp *hotpathChecker) checkFuncCall(call *ast.CallExpr, fn *types.Func) {
	pass := hp.pass
	sig, _ := fn.Type().(*types.Signature)
	// fmt is reported once as a class of its own; per-argument boxing
	// reports on top of it would be noise.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), KeyFmt, "fmt.%s boxes its operands and allocates; hot paths must not format", fn.Name())
		return
	}
	// Argument boxing against the callee's parameter types.
	if sig != nil {
		hp.checkArgBoxing(call, sig)
	}
	// Dynamic dispatch: a call through an interface method cannot be pinned
	// to an implementation, so the hot-path property is unverifiable.
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			pass.Reportf(call.Pos(), KeyCall,
				"dynamic dispatch through interface method %s cannot be verified allocation-free; pin the implementation or document the contract with //air:allow(call)", fn.Name())
			return
		}
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	switch {
	case pkg.Path() == pass.Pkg.Path():
		if !hp.hotObjs[fn.Origin()] {
			pass.Reportf(call.Pos(), KeyCall,
				"hot path calls %s, which is not //air:hotpath; annotate it or document the cold branch with //air:allow(call)", fn.Name())
		}
	case isAirPackage(pkg.Path()):
		if !pass.Imported.Hotpath[FuncKey(fn.Origin())] {
			pass.Reportf(call.Pos(), KeyCall,
				"hot path calls %s.%s, which is not //air:hotpath in its package; annotate it or document the cold branch with //air:allow(call)", pkg.Path(), fn.Name())
		}
	default: // standard library
		if allowedStdlibPkgs[pkg.Path()] || allowedStdlibFuncs[stdlibKey(fn)] {
			return
		}
		pass.Reportf(call.Pos(), KeyCall,
			"hot path calls %s.%s, which is not on the allocation-free stdlib allowlist", pkg.Path(), fn.Name())
	}
}

// stdlibKey renders "pkg.Recv.Name" for the stdlib allowlist lookup.
func stdlibKey(fn *types.Func) string {
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			key += name + "."
		}
	}
	return key + fn.Name()
}

func (hp *hotpathChecker) checkArgBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		hp.checkBoxing(pt, arg)
	}
}
