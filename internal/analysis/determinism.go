package analysis

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the logical-tick execution model: inside the
// tick domain — the packages whose state advances only with tick.Ticks —
// nothing may observe the wall clock, draw from global math/rand state,
// start goroutines, race on select defaults, or let map-iteration order
// reach state or emitted events. These are exactly the nondeterminism
// channels that would break the repo's replayable traces and the paper's
// claim that temporal behaviour is a function of the configuration
// (eqs. (1)–(13)), not of the host scheduler.
//
// Keys: wallclock, rand, goroutine, selectdefault, maprange.
var DeterminismAnalyzer = &Analyzer{
	Name: "airdeterminism",
	Doc:  "forbid wall-clock, global rand, goroutines, select-default and map-order nondeterminism in tick-domain packages",
	Run:  runDeterminism,
}

// tickDomain lists the packages under the logical-tick execution model: the
// module-tick spine and every layer it drives. All determinism checks apply.
var tickDomain = map[string]bool{
	"air/internal/tick":      true,
	"air/internal/model":     true,
	"air/internal/obs":       true,
	"air/internal/apex":      true,
	"air/internal/mmu":       true,
	"air/internal/pal":       true,
	"air/internal/sched":     true,
	"air/internal/hm":        true,
	"air/internal/ipc":       true,
	"air/internal/pmk":       true,
	"air/internal/pos":       true,
	"air/internal/core":      true,
	"air/internal/multicore": true,
	"air/internal/timeline":  true,
	"air/internal/recovery":  true,
	"air/internal/archive":   true,
	"air/internal/workload":  true,
}

// seededDomain lists packages whose results must be a pure function of their
// seed but which legitimately use goroutine pools and channels internally
// (the campaign engine): only the wall-clock and global-rand checks apply —
// those would leak host time into results; the concurrency is contained by
// construction and covered by the race detector.
var seededDomain = map[string]bool{
	"air/internal/campaign": true,
	"air/internal/fleet":    true,
}

// wallclockFuncs are the time-package functions that read or schedule on the
// host clock. time.Duration arithmetic and time.Time formatting are fine.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand constructors that produce explicitly
// seeded, locally owned generators — the blessed pattern.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	path := pass.Pkg.Path()
	full := tickDomain[path]
	if !full && !seededDomain[path] {
		return
	}

	// Wall-clock and global-rand reads: resolved through type information so
	// aliased imports and method values are caught.
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallclockFuncs[fn.Name()] {
				pass.Reportf(ident.Pos(), KeyWallclock,
					"time.%s reads the wall clock in tick-domain package %s; drive state from tick.Ticks or inject a clock seam", fn.Name(), path)
			}
		case "math/rand", "math/rand/v2":
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() == nil && !seededRandFuncs[fn.Name()] {
				pass.Reportf(ident.Pos(), KeyRand,
					"rand.%s draws from global math/rand state; use an explicitly seeded *rand.Rand", fn.Name())
			}
		}
	}

	if !full {
		return
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(stmt.Pos(), KeyGoroutine,
					"go statement in tick-domain package %s: concurrency must stay outside the logical-tick execution model", path)
			case *ast.SelectStmt:
				for _, clause := range stmt.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						pass.Reportf(cc.Pos(), KeySelectDefault,
							"select with default races on channel readiness; tick-domain control flow must be deterministic")
					}
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(stmt.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(stmt.Pos(), KeyMapRange,
							"map iteration order is nondeterministic; iterate sorted keys, or document order-insensitivity with //air:allow(maprange)")
					}
				}
			}
			return true
		})
	}
}
