// Package analysistest is a self-contained test harness for the airlint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone. Fixture packages live under testdata/src/<path>
// (a GOPATH-shaped tree): the import path of a fixture is its directory
// path, so fixtures can shadow real paths — air/internal/* stubs exercise
// the package-class tables and tiny stdlib stubs (time, math/rand) keep
// type checking hermetic and fast.
//
// Expected findings are declared in the fixture source:
//
//	time.Now() // want `reads the wall clock`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match one diagnostic reported on that line; a
// diagnostic with no matching want, or a want with no diagnostic, fails the
// test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"air/internal/analysis"
)

// Run loads each fixture package and checks the analyzer's findings against
// the // want expectations in its sources.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		root:  filepath.Join(wd, "testdata", "src"),
		fset:  token.NewFileSet(),
		cache: map[string]*fixture{},
	}
	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			runOne(t, ld, a, path)
		})
	}
}

func runOne(t *testing.T, ld *loader, a *analysis.Analyzer, path string) {
	t.Helper()
	fx, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	// The pass sees the facts of the fixture's direct imports, as the
	// airlint driver would provide them.
	imported := analysis.Facts{}
	for _, dep := range fx.pkg.Imports() {
		if d, ok := ld.cache[dep.Path()]; ok {
			imported.Merge(d.exported)
		}
	}
	diags := analysis.RunPackage([]*analysis.Analyzer{a}, ld.fset, fx.files, fx.pkg, fx.info, imported)

	wants := collectWants(t, ld.fset, fx.files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Key, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// fixture is one loaded testdata package.
type fixture struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	// exported is this package's syntax facts plus everything re-exported
	// from its dependencies (the vetx closure the driver maintains).
	exported analysis.Facts
}

type loader struct {
	root  string
	fset  *token.FileSet
	cache map[string]*fixture
}

// Import implements types.Importer over the testdata tree.
func (ld *loader) Import(path string) (*types.Package, error) {
	fx, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	return fx.pkg, nil
}

func (ld *loader) load(path string) (*fixture, error) {
	if fx, ok := ld.cache[path]; ok {
		return fx, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q not under testdata/src: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{Importer: ld}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type checking fixture %q: %w", path, err)
	}
	fx := &fixture{pkg: pkg, files: files, info: info}
	fx.exported = analysis.CollectSyntaxFacts(path, ld.fset, files)
	for _, dep := range pkg.Imports() {
		if d, ok := ld.cache[dep.Path()]; ok {
			fx.exported.Merge(d.exported)
		}
	}
	ld.cache[path] = fx
	return fx, nil
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE matches each quoted or backquoted expectation after "want".
var wantRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					re, err := regexp.Compile(q[1 : len(q)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}
