package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestChan(t *testing.T) {
	analysistest.Run(t, analysis.ChanAnalyzer,
		"air/internal/chanfix",
	)
}
