package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysis.HotpathAnalyzer,
		"example.com/hot",
	)
}
