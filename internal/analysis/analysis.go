// Package analysis is airlint: a purpose-built static-analysis suite that
// enforces this repository's load-bearing invariants at compile time instead
// of trusting tests and benchmarks to catch violations after they ship. It
// follows the architecture of golang.org/x/tools/go/analysis (analyzers over
// a typed syntax pass, facts flowing along the import graph, a vettool
// driver) but is implemented on the standard library alone, so the suite
// builds offline with nothing beyond the Go toolchain.
//
// The suite mirrors the paper's position that temporal and spatial
// partitioning guarantees are verifiable properties, not conventions
// (eqs. (1)–(24) and the formal-specification line of related work on
// ARINC 653): each analyzer mechanically checks one invariant the
// architecture depends on.
//
//   - airdeterminism: tick-domain packages advance on logical ticks only —
//     no wall clock, no global math/rand, no goroutines, no racy selects,
//     no map-iteration order reaching state or emitted events.
//   - airhotpath: functions annotated //air:hotpath (the module-tick spine)
//     must be statically allocation-free: no heap-bound composite literals,
//     closures, fmt, interface boxing, or calls outside the hot-path set.
//   - airpartition: the spatial-separation rule as an import-layering check,
//     plus the spine discipline that raw obs.Event values are constructed
//     only on the emission path.
//   - airhmrouting: Health Monitor decisions must be acted on — never
//     dropped or detoured into ad-hoc logging.
//   - airguard: struct fields annotated //air:guard(mu) may only be read or
//     written while the named sibling mutex is held, checked by intra-
//     procedural lock-set tracking (Lock/Unlock/defer Unlock, RLock for
//     reads).
//   - airspawn: every go statement outside the tick domain must be join-able
//     (WaitGroup Add/Done, a stop channel it selects on, or a context);
//     leak-prone goroutines are findings.
//   - airchan: channel ownership discipline — close only in the owning
//     function or a stop path, no send reachable after a close, and
//     goroutine shutdown loops must carry a stop case.
//   - airdurable: in packages that persist state, an os.Rename publishing a
//     temp file must be preceded by File.Sync on that file, and appends to
//     framed files go through the framing encoder, never a raw Write.
//   - airallow: the //air: directive language itself is checked; an unknown
//     directive or allow-key is a lint error, so suppressions cannot rot.
//
// Findings may be suppressed with a documented escape hatch:
//
//	//air:allow(key): reason
//
// placed on (or immediately above) the offending line, or in a function's
// doc comment to cover the whole function. The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DocBase is the base location for per-analyzer documentation; every
// diagnostic carries DocBase#<analyzer-name> so a finding always links back
// to the invariant it guards.
const DocBase = "DESIGN.md"

// An Analyzer checks one architectural invariant.
type Analyzer struct {
	// Name is the analyzer's identifier (also its enable/disable flag name
	// in the airlint driver).
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
	// SyntaxFacts, if non-nil, extracts the facts this analyzer exports to
	// dependent packages from syntax alone (no type information), so the
	// driver can harvest facts from dependencies cheaply.
	SyntaxFacts func(pkgPath string, fset *token.FileSet, files []*ast.File) Facts
}

// URL returns the documentation anchor for this analyzer's invariant.
func (a *Analyzer) URL() string { return DocBase + "#" + a.Name }

// All returns the full airlint suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		AllowAnalyzer,
		DeterminismAnalyzer,
		HotpathAnalyzer,
		PartitionAnalyzer,
		HMRoutingAnalyzer,
		GuardAnalyzer,
		SpawnAnalyzer,
		ChanAnalyzer,
		DurableAnalyzer,
	}
}

// ByName resolves one analyzer (nil if unknown).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A TextEdit is one byte-range replacement in a source file. Start and End
// are 0-based byte offsets into the file; an insertion has Start == End.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// A SuggestedFix is a machine-applicable repair for a finding, applied by
// the airlint driver's -fix mode.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Key is the finding class, usable in an //air:allow(key) suppression.
	Key     string
	Message string
	// Fix, when non-nil, is a machine-applicable repair.
	Fix *SuggestedFix
}

// String renders the diagnostic the way the airlint driver prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s (%s#%s)", d.Pos, d.Analyzer, d.Message, DocBase, d.Analyzer)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test syntax trees. Test files are
	// deliberately out of scope: tests may freely use wall clocks,
	// goroutines and allocation to exercise the deterministic core.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Imported holds the merged facts exported by the package's
	// dependencies (e.g. which imported functions are //air:hotpath).
	Imported Facts

	allow  *AllowIndex
	report func(Diagnostic)
}

// Reportf records a finding of the given class at pos unless an
// //air:allow(key) suppression covers it.
func (p *Pass) Reportf(pos token.Pos, key, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.AllowedAt(position, pos, key) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Key:      key,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding that carries a machine-applicable repair,
// honoring the same //air:allow suppression rules as Reportf.
func (p *Pass) ReportFix(pos token.Pos, key string, fix *SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.AllowedAt(position, pos, key) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Key:      key,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// RunPackage runs the given analyzers over one typed package and returns the
// findings sorted by position. imported carries the dependencies' merged
// facts (may be nil).
func RunPackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported Facts) []Diagnostic {
	allow := NewAllowIndex(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Imported: imported,
			allow:    allow,
			report:   func(d Diagnostic) { out = append(out, d) },
		}
		a.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// CollectSyntaxFacts harvests every analyzer's exported facts from a
// package's syntax. The driver runs this over dependencies (and over the
// package under analysis) without needing type information.
func CollectSyntaxFacts(pkgPath string, fset *token.FileSet, files []*ast.File) Facts {
	merged := Facts{}
	for _, a := range All() {
		if a.SyntaxFacts == nil {
			continue
		}
		merged.Merge(a.SyntaxFacts(pkgPath, fset, files))
	}
	return merged
}
