package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestSpawn(t *testing.T) {
	analysistest.Run(t, analysis.SpawnAnalyzer,
		"air/internal/fleet", // non-tick air package: every go statement checked
		"example.com/plain",  // outside the module: exempt
	)
}
