package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DurableAnalyzer is airdurable: the write→fsync→rename durability protocol
// in the packages that persist state. Three rules:
//
//  1. An os.Rename that publishes a temp file must be preceded by a Sync on
//     the handle that wrote it — rename is atomic on the directory entry,
//     but without the fsync the newly visible file can be empty or torn
//     after a crash. When the Sync exists but sits after the Rename, the
//     finding carries a machine fix that reorders it.
//  2. os.WriteFile never syncs, so in a durable package it is always a
//     finding: durable bytes must go through open, write, Sync, Close.
//  3. A raw Write on a struct-field *os.File bypasses the package's framing
//     encoder (CRC frames, fsynced JSONL records): appends go through the
//     encoder, or the site documents why it IS the encoder with
//     //air:allow(durable).
var DurableAnalyzer = &Analyzer{
	Name: "airdurable",
	Doc:  "durable state is published fsync-before-rename and appended through the framing encoder",
	Run:  runDurable,
}

// durablePkgs are the packages that own crash-recoverable state: the fleet
// coordinator's journal and archive index, the flight archive's segments
// and manifest, and the campaign engine's shipped-archive store.
var durablePkgs = map[string]bool{
	"air/internal/fleet":    true,
	"air/internal/archive":  true,
	"air/internal/campaign": true,
}

func runDurable(pass *Pass) {
	if !durablePkgs[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDurableFunc(pass, fd)
		}
		checkRawWrites(pass, file)
	}
}

// fileEvent is one durability-relevant call, ordered by position.
type fileEvent struct {
	pos     token.Pos
	kind    string       // "open", "sync", "rename", "writefile"
	obj     types.Object // open: the handle variable; sync: the receiver root
	pathKey string       // open/rename: rendered source-path expression
	stmt    ast.Stmt     // enclosing statement (reorder fix anchors)
}

// checkDurableFunc enforces sync-before-rename and no-WriteFile within one
// function, by position order (durability code is straight-line).
func checkDurableFunc(pass *Pass, fd *ast.FuncDecl) {
	var events []fileEvent
	var stack []ast.Node
	// enclosingStmt resolves the block-level statement around the node under
	// visit — the IfStmt, not its init clause — so fix edits anchor at a
	// position where a whole statement can be inserted.
	enclosingStmt := func() ast.Stmt {
		for i := len(stack) - 1; i >= 0; i-- {
			s, ok := stack[i].(ast.Stmt)
			if !ok {
				continue
			}
			if i == 0 {
				return s
			}
			switch stack[i-1].(type) {
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				return s
			}
		}
		return nil
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && isOSFile(pass.Info.TypeOf(sel.X)) {
			if root := (&guardWalker{pass: pass}).rootIdent(sel.X); root != nil {
				events = append(events, fileEvent{pos: call.Pos(), kind: "sync", obj: root, stmt: enclosingStmt()})
			}
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && isPackageFunc(fn) {
			switch fn.Name() {
			case "OpenFile", "Create":
				if len(call.Args) >= 1 {
					events = append(events, fileEvent{
						pos:     call.Pos(),
						kind:    "open",
						pathKey: renderPath(call.Args[0]),
						obj:     assignTarget(pass, enclosingStmt(), call),
					})
				}
			case "Rename":
				if len(call.Args) == 2 {
					events = append(events, fileEvent{
						pos:     call.Pos(),
						kind:    "rename",
						pathKey: renderPath(call.Args[0]),
						stmt:    enclosingStmt(),
					})
				}
			case "WriteFile":
				events = append(events, fileEvent{pos: call.Pos(), kind: "writefile"})
			}
			return true
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	for i, ev := range events {
		switch ev.kind {
		case "writefile":
			pass.Reportf(ev.pos, KeyDurable, "os.WriteFile cannot fsync: durable state must go through open, write, Sync, Close before publication")
		case "rename":
			if ev.pathKey == "" {
				continue
			}
			// Which handle wrote the rename source?
			var opened *fileEvent
			for j := i - 1; j >= 0; j-- {
				if events[j].kind == "open" && events[j].pathKey == ev.pathKey {
					opened = &events[j]
					break
				}
			}
			if opened == nil || opened.obj == nil {
				continue
			}
			synced := false
			for j := 0; j < i; j++ {
				if events[j].kind == "sync" && events[j].obj == opened.obj {
					synced = true
					break
				}
			}
			if synced {
				continue
			}
			// A Sync after the rename is the reorder case: machine-fixable
			// when the Sync is a plain statement.
			var fix *SuggestedFix
			for j := i + 1; j < len(events); j++ {
				if events[j].kind == "sync" && events[j].obj == opened.obj {
					fix = reorderFix(pass, events[j], ev)
					break
				}
			}
			pass.ReportFix(ev.pos, KeyDurable, fix, "os.Rename publishes %s without a preceding Sync on its handle: a crash can surface an empty or torn file", ev.pathKey)
		}
	}
}

// assignTarget resolves the variable an os.OpenFile/os.Create result binds
// to: `f, err := os.OpenFile(...)`, directly or in an if-init.
func assignTarget(pass *Pass, stmt ast.Stmt, call *ast.CallExpr) types.Object {
	if ifs, ok := stmt.(*ast.IfStmt); ok {
		stmt = ifs.Init
	}
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) || len(as.Lhs) == 0 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// isPackageFunc reports whether fn is a package-level function (not a
// method): os.File methods also carry Pkg()=="os" and must not be eaten
// by the package-function switch.
func isPackageFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// reorderFix moves a plain `f.Sync()` statement to just before the rename's
// enclosing statement.
func reorderFix(pass *Pass, syncEv, renameEv fileEvent) *SuggestedFix {
	syncStmt, ok := syncEv.stmt.(*ast.ExprStmt)
	if !ok || renameEv.stmt == nil {
		return nil
	}
	call, ok := syncStmt.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	recv := renderPath(sel.X)
	if recv == "" {
		return nil
	}
	sp := pass.Fset.Position(syncStmt.Pos())
	se := pass.Fset.Position(syncStmt.End())
	rp := pass.Fset.Position(renameEv.stmt.Pos())
	if sp.Filename != rp.Filename {
		return nil
	}
	indent := strings.Repeat("\t", rp.Column-1)
	return &SuggestedFix{
		Message: "move the Sync before the Rename",
		Edits: []TextEdit{
			{
				// Delete the Sync statement's line (indentation + newline).
				File:  sp.Filename,
				Start: sp.Offset - (sp.Column - 1),
				End:   se.Offset + 1,
			},
			{
				// Re-insert it before the rename statement.
				File:    rp.Filename,
				Start:   rp.Offset,
				End:     rp.Offset,
				NewText: recv + ".Sync()\n" + indent,
			},
		},
	}
}

// checkRawWrites flags Write calls on struct-field file handles: those are
// the framed journal/segment files, and raw bytes bypass the CRC framing.
func checkRawWrites(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Write" && sel.Sel.Name != "WriteString" {
			return true
		}
		if !isOSFile(pass.Info.TypeOf(sel.X)) {
			return true
		}
		// Only struct-field handles (x.f.Write): a local handle is a
		// staging file covered by the rename rule.
		base, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[base.Sel]; obj != nil {
			if v, isVar := obj.(*types.Var); isVar && v.IsField() {
				pass.Reportf(call.Pos(), KeyDurable, "raw %s on framed handle %s bypasses the framing encoder: append through the frame encoder or document the framing discipline with //air:allow(durable)", sel.Sel.Name, renderPath(sel.X))
			}
		}
		return true
	})
}
