package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The //air: directive language. Four directives exist:
//
//	//air:hotpath
//	    In a function's doc comment: the function is part of the module-tick
//	    spine and must satisfy the airhotpath invariant (0 allocs/op).
//
//	//air:guard(mu)
//	    On a struct field (doc comment or trailing line comment): the field
//	    may only be read or written while the sibling mutex field mu is
//	    held. Reads additionally accept an RLock when mu is a sync.RWMutex.
//	    Enforced flow-sensitively by airguard.
//
//	//air:locked(mu)
//	    In a method's doc comment: the method requires the receiver's mutex
//	    field mu to be held on entry (or exclusive ownership of a freshly
//	    constructed receiver). airguard seeds the method's lock set with mu
//	    and checks that every call site holds it.
//
//	//air:allow(key): reason
//	    Suppresses findings of class key. In a function's doc comment the
//	    suppression covers the whole function; on a statement's line (or the
//	    line immediately above it) it covers that line only. The reason is
//	    mandatory: every escape hatch is documented at the point of use.

// Finding classes, usable as //air:allow keys. Each analyzer documents which
// classes it emits.
const (
	KeyWallclock     = "wallclock"     // time.Now/Since/... in a tick domain
	KeyRand          = "rand"          // global math/rand state
	KeyGoroutine     = "goroutine"     // go statement in a tick domain
	KeySelectDefault = "selectdefault" // select with a default clause
	KeyMapRange      = "maprange"      // map iteration order reaching state
	KeyAlloc         = "alloc"         // heap allocation in a hot path
	KeyClosure       = "closure"       // closure in a hot path
	KeyBoxing        = "boxing"        // interface boxing in a hot path
	KeyFmt           = "fmt"           // fmt machinery in a hot path
	KeyCall          = "call"          // call leaving the hot-path set
	KeyLayering      = "layering"      // spatial-separation import violation
	KeyRawEvent      = "rawevent"      // obs.Event built off the emission path
	KeyHMDrop        = "hmdrop"        // Health Monitor decision dropped
	KeyGuard         = "guard"         // //air:guard field access without the lock
	KeySpawn         = "spawn"         // goroutine without a join/stop mechanism
	KeyChan          = "chan"          // channel ownership/close discipline
	KeyDurable       = "durable"       // durable write published without fsync
)

// knownKeys is the closed set of valid allow-keys; airallow flags anything
// else so a typoed suppression is itself a lint error.
var knownKeys = map[string]bool{
	KeyWallclock:     true,
	KeyRand:          true,
	KeyGoroutine:     true,
	KeySelectDefault: true,
	KeyMapRange:      true,
	KeyAlloc:         true,
	KeyClosure:       true,
	KeyBoxing:        true,
	KeyFmt:           true,
	KeyCall:          true,
	KeyLayering:      true,
	KeyRawEvent:      true,
	KeyHMDrop:        true,
	KeyGuard:         true,
	KeySpawn:         true,
	KeyChan:          true,
	KeyDurable:       true,
}

// directiveRE matches "air:<name>" optionally followed by "(arg)" and an
// optional ": reason" tail.
var directiveRE = regexp.MustCompile(`^air:(\w+)(?:\(([^)]*)\))?(?:\s*:\s*(.*))?$`)

// A Directive is one parsed //air: comment.
type Directive struct {
	Pos    token.Pos
	Name   string // "hotpath" or "allow"
	Arg    string // allow key (empty for hotpath)
	Reason string // text after ": " (empty if none)
	raw    string
}

// ParseDirective parses a single comment's text ("//..." included). The
// second result is false when the comment is not an //air: directive at all.
// Malformed directives (e.g. "//air:") still return true so checkers can
// flag them.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	// An //air: directive is machine-facing: it starts immediately after
	// the slashes, like //go: directives.
	if !strings.HasPrefix(text, "air:") {
		return Directive{}, false
	}
	// Analyzer-fixture expectation markers share the directive's line; they
	// are not part of the directive.
	if i := strings.Index(text, " // want"); i >= 0 {
		text = strings.TrimRight(text[:i], " \t")
	}
	d := Directive{Pos: c.Pos(), raw: text}
	m := directiveRE.FindStringSubmatch(text)
	if m == nil {
		return d, true // malformed; Name stays empty
	}
	d.Name, d.Arg, d.Reason = m[1], m[2], strings.TrimSpace(m[3])
	return d, true
}

// Directives returns every //air: directive in the file, including malformed
// ones.
func Directives(file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d, ok := ParseDirective(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// IsHotpath reports whether the function declaration's doc comment carries
// //air:hotpath.
func IsHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if d, ok := ParseDirective(c); ok && d.Name == "hotpath" {
			return true
		}
	}
	return false
}

// LockedArg returns the mutex field named by an //air:locked(mu) directive
// in the function's doc comment, or "" when the function carries none.
func LockedArg(decl *ast.FuncDecl) string {
	if decl.Doc == nil {
		return ""
	}
	for _, c := range decl.Doc.List {
		if d, ok := ParseDirective(c); ok && d.Name == "locked" && d.Arg != "" {
			return d.Arg
		}
	}
	return ""
}

// GuardArg returns the sibling mutex field named by an //air:guard(mu)
// directive attached to the struct field (doc or trailing comment), or ""
// when the field carries none.
func GuardArg(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d, ok := ParseDirective(c); ok && d.Name == "guard" && d.Arg != "" {
				return d.Arg
			}
		}
	}
	return ""
}

// An AllowIndex resolves whether a position is covered by an //air:allow
// suppression. Line-scoped allows cover the directive's own line and the
// line immediately below it (so both end-of-line and line-above placement
// work); function-doc allows cover the function's whole body.
type AllowIndex struct {
	// lines maps filename → line → allowed keys.
	lines map[string]map[int]map[string]bool
	// funcs are position ranges with function-scoped allows.
	funcs []funcAllow
}

type funcAllow struct {
	start, end token.Pos
	keys       map[string]bool
}

// NewAllowIndex builds the suppression index for a package's files.
func NewAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	idx := &AllowIndex{lines: map[string]map[int]map[string]bool{}}
	for _, file := range files {
		// Function-doc allows.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var keys map[string]bool
			for _, c := range fd.Doc.List {
				if d, ok := ParseDirective(c); ok && d.Name == "allow" && d.Arg != "" {
					if keys == nil {
						keys = map[string]bool{}
					}
					keys[d.Arg] = true
				}
			}
			if keys != nil {
				idx.funcs = append(idx.funcs, funcAllow{start: fd.Pos(), end: fd.End(), keys: keys})
			}
		}
		// Line allows (any placement, including inside function bodies; the
		// doc-comment ones also land here harmlessly).
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := ParseDirective(c)
				if !ok || d.Name != "allow" || d.Arg == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					idx.lines[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					keys := byLine[line]
					if keys == nil {
						keys = map[string]bool{}
						byLine[line] = keys
					}
					keys[d.Arg] = true
				}
			}
		}
	}
	return idx
}

// AllowedAt reports whether a finding of class key at the given position is
// suppressed.
func (idx *AllowIndex) AllowedAt(position token.Position, pos token.Pos, key string) bool {
	if idx == nil {
		return false
	}
	if byLine := idx.lines[position.Filename]; byLine != nil {
		if keys := byLine[position.Line]; keys != nil && keys[key] {
			return true
		}
	}
	for _, fa := range idx.funcs {
		if pos >= fa.start && pos < fa.end && fa.keys[key] {
			return true
		}
	}
	return false
}

// AllowAnalyzer validates the //air: directive language itself: unknown
// directives, unknown allow-keys, missing arguments, undocumented allows
// (no ": reason") and //air:hotpath outside a function doc comment are all
// findings. Suppression syntax that silently does nothing is how lint
// escape hatches rot, so the hatch grammar is enforced as strictly as the
// invariants it bypasses.
var AllowAnalyzer = &Analyzer{
	Name: "airallow",
	Doc:  "validate //air: directives (unknown keys and undocumented suppressions are errors)",
	Run:  runAllow,
}

func runAllow(pass *Pass) {
	for _, file := range pass.Files {
		// Positions of doc comments attached to function declarations:
		// //air:hotpath and //air:locked are only meaningful there.
		funcDoc := map[*ast.Comment]bool{}
		methodDoc := map[*ast.Comment]bool{}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					funcDoc[c] = true
					if fd.Recv != nil {
						methodDoc[c] = true
					}
				}
			}
		}
		// Comments attached to struct fields: //air:guard lives there.
		fieldDoc := map[*ast.Comment]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						fieldDoc[c] = true
					}
				}
			}
			return true
		})
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := ParseDirective(c)
				if !ok {
					continue
				}
				switch d.Name {
				case "":
					pass.Reportf(d.Pos, "directive", "malformed //air: directive %q", d.raw)
				case "hotpath":
					if d.Arg != "" {
						pass.Reportf(d.Pos, "directive", "//air:hotpath takes no argument")
					} else if !funcDoc[c] {
						pass.Reportf(d.Pos, "directive", "//air:hotpath must be in a function's doc comment")
					}
				case "guard":
					if d.Arg == "" {
						pass.Reportf(d.Pos, "directive", "//air:guard needs the sibling mutex field: //air:guard(mu)")
					} else if !fieldDoc[c] {
						pass.Reportf(d.Pos, "directive", "//air:guard must be attached to a struct field")
					}
				case "locked":
					if d.Arg == "" {
						pass.Reportf(d.Pos, "directive", "//air:locked needs the held mutex field: //air:locked(mu)")
					} else if !methodDoc[c] {
						pass.Reportf(d.Pos, "directive", "//air:locked must be in a method's doc comment")
					}
				case "allow":
					switch {
					case d.Arg == "":
						pass.Reportf(d.Pos, "directive", "//air:allow needs a key: //air:allow(key): reason")
					case !knownKeys[d.Arg]:
						pass.Reportf(d.Pos, "directive", "unknown //air:allow key %q", d.Arg)
					case d.Reason == "":
						pass.Reportf(d.Pos, "directive", "//air:allow(%s) needs a documented reason: //air:allow(%s): why", d.Arg, d.Arg)
					}
				default:
					pass.Reportf(d.Pos, "directive", "unknown //air: directive %q", d.Name)
				}
			}
		}
	}
}
