package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestPartition(t *testing.T) {
	analysistest.Run(t, analysis.PartitionAnalyzer,
		"air/internal/pos",      // forbidden pair: POS → PMK
		"air/internal/workload", // forbidden pairs: workload → sched, pmk
		"air/internal/model",    // rank violation + raw event off the emit path
		"air/internal/ipc",      // emit path: direct arg fine, stored event flagged
		"example.com/tool",      // outside emit path entirely
	)
}
