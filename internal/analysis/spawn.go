package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpawnAnalyzer is airspawn: every go statement outside the tick domain must
// be join-able — its goroutine ties back to the spawner through a
// sync.WaitGroup Done, a stop/done channel it receives on (chan struct{},
// which includes ctx.Done()), or a completion channel it defer-closes. A
// goroutine with none of those outlives its spawner unobserved: in a
// long-running fleet daemon that is a leak, and in a crash-recovery path it
// is work the coordinator cannot drain. Tick-domain packages are out of
// scope here: airdeterminism forbids their goroutines outright.
var SpawnAnalyzer = &Analyzer{
	Name: "airspawn",
	Doc:  "goroutines outside the tick domain must be join-able (WaitGroup, stop channel, or context)",
	Run:  runSpawn,
}

func runSpawn(pass *Pass) {
	path := pass.Pkg.Path()
	if !isAirPackage(path) || tickDomain[path] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			g := &spawnChecker{pass: pass}
			if lit, isLit := gs.Call.Fun.(*ast.FuncLit); isLit {
				if !g.joinable(lit.Body) {
					pass.Reportf(gs.Pos(), KeySpawn, "goroutine is not join-able: no WaitGroup.Done, stop-channel receive, or deferred close in its body; it can outlive its spawner")
				}
				return true
			}
			// Named callee: inspect the body when it is declared in this
			// package, otherwise fall back to the argument signature.
			if fn := calleeFunc(pass, gs.Call); fn != nil {
				if body := g.declBody(fn); body != nil {
					if !g.joinable(body) {
						pass.Reportf(gs.Pos(), KeySpawn, "goroutine %s is not join-able: no WaitGroup.Done, stop-channel receive, or deferred close in its body", fn.Name())
					}
					return true
				}
			}
			if !g.joinableArgs(gs.Call) {
				pass.Reportf(gs.Pos(), KeySpawn, "goroutine is not visibly join-able: pass a *sync.WaitGroup, stop channel, or context so the spawner can wait for it")
			}
			return true
		})
	}
}

type spawnChecker struct {
	pass *Pass
}

// declBody finds the body of a function declared in the package under
// analysis.
func (s *spawnChecker) declBody(fn *types.Func) *ast.BlockStmt {
	if fn.Pkg() != s.pass.Pkg {
		return nil
	}
	for _, file := range s.pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && s.pass.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// joinable reports whether a goroutine body contains a join mechanism.
func (s *spawnChecker) joinable(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if t := s.pass.Info.TypeOf(sel.X); t != nil && isWaitGroup(t) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// <-done / <-ctx.Done(): a receive from a signal channel.
			if x.Op == token.ARROW && s.isSignalChan(x.X) {
				found = true
			}
		case *ast.RangeStmt:
			// for range done {}: also a receive from a signal channel.
			if s.isSignalChan(x.X) {
				found = true
			}
		case *ast.DeferStmt:
			// defer close(result): completion is observable by a joiner.
			if id, ok := x.Call.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Call.Args) == 1 {
				if t := s.pass.Info.TypeOf(x.Call.Args[0]); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isSignalChan reports whether the expression is a channel whose element is
// struct{} — the stop/done channel convention, which ctx.Done() also
// satisfies.
func (s *spawnChecker) isSignalChan(e ast.Expr) bool {
	t := s.pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// joinableArgs reports whether a go call whose body is out of reach passes
// the callee something the spawner could join on.
func (s *spawnChecker) joinableArgs(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := s.pass.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if isWaitGroup(t) {
			return true
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			return true
		}
		if isContext(t) {
			return true
		}
	}
	return false
}

// isWaitGroup reports whether t is sync.WaitGroup or a pointer to it.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
