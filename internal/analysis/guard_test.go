package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestGuard(t *testing.T) {
	analysistest.Run(t, analysis.GuardAnalyzer,
		"example.com/guard",
	)
}
