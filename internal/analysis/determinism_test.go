package analysis_test

import (
	"testing"

	"air/internal/analysis"
	"air/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.DeterminismAnalyzer,
		"air/internal/sched",    // tick domain: every channel flagged
		"air/internal/campaign", // seeded domain: wallclock+rand only
		"example.com/plain",     // outside both domains: exempt
	)
}
