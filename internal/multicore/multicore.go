// Package multicore implements the paper's future-work item (iv): "the
// implications of unforeseen events on the time model ... and parallelism
// between partition time windows on a multicore platform" (Sect. 8).
//
// The design follows the natural AIR extension: each processor core runs its
// own two-level hierarchy — a PMK partition scheduler and dispatcher over
// per-core partition scheduling tables — while the spatial partitioning
// state (physical memory and MMU contexts), the interpartition channel
// router and the Health Monitor are module-wide and shared. Partitions have
// static core affinity (a partition's windows appear on exactly one core),
// which preserves the single-context POS/PAL design inside each partition
// while letting partition time windows of *different* partitions overlap in
// real time across cores.
//
// Execution remains deterministic: at every global tick the cores are
// stepped in index order under the strict-alternation protocol, so a
// multicore run is a reproducible interleaving (core 0's tick-t work
// happens-before core 1's tick-t work).
package multicore

import (
	"errors"
	"fmt"

	"air/internal/core"
	"air/internal/hm"
	"air/internal/ipc"
	"air/internal/mmu"
	"air/internal/model"
	"air/internal/obs"
	"air/internal/tick"
)

// Config describes a multicore AIR module.
type Config struct {
	// Cores holds one single-core configuration per processor core: its
	// partitions and its partition scheduling tables. Channel and memory
	// configuration must be left empty on the per-core configs; they are
	// module-wide.
	Cores []core.Config
	// Sampling and Queuing configure the module-wide interpartition
	// channels (they may connect partitions on different cores).
	Sampling []ipc.SamplingConfig
	Queuing  []ipc.QueuingConfig
	// HMModuleTable configures module-level health monitoring.
	HMModuleTable hm.Table
	// MemoryBytes sizes the shared simulated physical memory.
	MemoryBytes int
	// TraceCapacity bounds the module-wide trace ring shared by all cores
	// (0 inherits Cores[0].TraceCapacity, then the 4096 default; <0
	// disables retention — spine metrics still accumulate).
	TraceCapacity int
	// Sinks attaches additional observability sinks to the shared spine.
	Sinks []obs.Sink
}

// Multicore module errors.
var (
	ErrNoCores          = errors.New("multicore: no cores configured")
	ErrAffinityConflict = errors.New("multicore: partition assigned to more than one core")
	ErrPerCoreChannels  = errors.New("multicore: channels must be configured module-wide")
	ErrUnknownPartition = errors.New("multicore: unknown partition")
)

// Module is a running multicore AIR module.
type Module struct {
	cores  []*core.Module
	shared core.SharedPlatform
	byPart map[model.PartitionName]int // partition → core index
	now    tick.Ticks
}

// NewModule validates core affinity and builds the module: one core.Module
// per core over a shared platform.
func NewModule(cfg Config) (*Module, error) {
	if len(cfg.Cores) == 0 {
		return nil, ErrNoCores
	}
	byPart := make(map[model.PartitionName]int)
	for i, cc := range cfg.Cores {
		if len(cc.Sampling) != 0 || len(cc.Queuing) != 0 {
			return nil, fmt.Errorf("%w (core %d)", ErrPerCoreChannels, i)
		}
		if cc.Shared != nil {
			return nil, fmt.Errorf("multicore: core %d pre-populates Shared", i)
		}
		for _, pc := range cc.Partitions {
			if prev, dup := byPart[pc.Name]; dup {
				return nil, fmt.Errorf("%w: %s on cores %d and %d",
					ErrAffinityConflict, pc.Name, prev, i)
			}
			byPart[pc.Name] = i
		}
	}

	memBytes := cfg.MemoryBytes
	if memBytes == 0 {
		memBytes = 16 << 20
	}
	traceCap := cfg.TraceCapacity
	if traceCap == 0 {
		traceCap = cfg.Cores[0].TraceCapacity
	}
	if traceCap == 0 {
		traceCap = 4096
	}
	m := &Module{byPart: byPart}
	// One observability spine spans the whole module: every core emits into
	// it with its own core tag, so the shared ring holds the merged module
	// trace in (time, core) emission order with no post-hoc sorting. The
	// ring admits only the twelve trace kinds (bounded retention must not be
	// crowded out by fine-grained scheduling events).
	bus := obs.NewBus()
	ring := obs.NewRingKinds(traceCap, obs.TraceKinds()...)
	if ring != nil {
		bus.Attach(ring)
	}
	for _, s := range cfg.Sinks {
		bus.Attach(s)
	}
	m.shared = core.SharedPlatform{
		Memory: mmu.New(memBytes),
		Router: ipc.NewRouter(),
		Health: hm.New(hm.Config{
			Now:         func() tick.Ticks { return m.now },
			ModuleTable: cfg.HMModuleTable,
			// The monitor and router are module-wide components; their
			// spine events carry core tag 0.
			Obs: obs.NewEmitter(bus, 0),
		}),
		Bus:  bus,
		Ring: ring,
	}
	m.shared.Router.AttachObs(obs.NewEmitter(bus, 0))
	for _, sc := range cfg.Sampling {
		if _, err := m.shared.Router.AddSampling(sc); err != nil {
			return nil, err
		}
	}
	for _, qc := range cfg.Queuing {
		if _, err := m.shared.Router.AddQueuing(qc); err != nil {
			return nil, err
		}
	}
	for i, cc := range cfg.Cores {
		cc.Shared = &m.shared
		cc.CoreID = i
		cm, err := core.NewModule(cc)
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", i, err)
		}
		m.cores = append(m.cores, cm)
	}
	return m, nil
}

// Start boots every core.
func (m *Module) Start() error {
	for i, c := range m.cores {
		if err := c.Start(); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
	}
	return nil
}

// Step advances the global clock one tick: each core executes its tick in
// index order. MMU contexts are per-access in the shared MMU, so the
// sequential stepping is observationally equivalent to parallel windows.
func (m *Module) Step() error {
	for i, c := range m.cores {
		if c.Halted() {
			continue
		}
		if err := c.Step(); err != nil {
			if errors.Is(err, core.ErrHalted) {
				continue
			}
			return fmt.Errorf("core %d: %w", i, err)
		}
	}
	m.now++
	return nil
}

// Run executes n global ticks.
func (m *Module) Run(n tick.Ticks) error {
	for i := tick.Ticks(0); i < n; i++ {
		if m.Halted() {
			return nil
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Shutdown stops all cores' process goroutines.
func (m *Module) Shutdown() {
	for _, c := range m.cores {
		c.Shutdown()
	}
}

// Halted reports whether every core halted.
func (m *Module) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Now returns the global clock.
func (m *Module) Now() tick.Ticks { return m.now }

// Cores returns the number of cores.
func (m *Module) Cores() int { return len(m.cores) }

// Core returns the i-th core's module.
func (m *Module) Core(i int) (*core.Module, error) {
	if i < 0 || i >= len(m.cores) {
		return nil, fmt.Errorf("multicore: no core %d", i)
	}
	return m.cores[i], nil
}

// Partition locates a partition's runtime and its core index.
func (m *Module) Partition(name model.PartitionName) (*core.Partition, int, error) {
	idx, ok := m.byPart[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownPartition, name)
	}
	pt, err := m.cores[idx].Partition(name)
	if err != nil {
		return nil, 0, err
	}
	return pt, idx, nil
}

// Health exposes the shared health monitor.
func (m *Module) Health() *hm.Monitor { return m.shared.Health }

// Memory exposes the shared MMU.
func (m *Module) Memory() *mmu.MMU { return m.shared.Memory }

// Trace returns the module-wide trace. Cores are stepped in index order at
// every global tick, so the shared ring's emission order is already the
// merged (time, core) order the old per-core merge sort produced — each
// event carries the emitting core in Event.Core.
func (m *Module) Trace() []core.Event {
	return m.shared.Ring.Events()
}

// TraceKind filters the merged trace.
func (m *Module) TraceKind(kind core.EventKind) []core.Event {
	var out []core.Event
	for _, e := range m.Trace() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Bus exposes the module-wide observability spine.
func (m *Module) Bus() *obs.Bus { return m.shared.Bus }

// Metrics returns a snapshot of the shared spine's metrics registry.
func (m *Module) Metrics() obs.Snapshot { return m.shared.Bus.Snapshot() }

// VerifyAffinity checks a multicore configuration's partition-to-core
// assignment without building the module (integration tooling).
func VerifyAffinity(cfg Config) error {
	seen := make(map[model.PartitionName]int)
	for i, cc := range cfg.Cores {
		for _, pc := range cc.Partitions {
			if prev, dup := seen[pc.Name]; dup {
				return fmt.Errorf("%w: %s on cores %d and %d",
					ErrAffinityConflict, pc.Name, prev, i)
			}
			seen[pc.Name] = i
		}
	}
	return nil
}
