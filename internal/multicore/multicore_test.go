package multicore

import (
	"errors"
	"strings"
	"testing"

	"air/internal/apex"
	"air/internal/core"
	"air/internal/hm"
	"air/internal/ipc"
	"air/internal/mmu"
	"air/internal/model"
	"air/internal/obs"
	"air/internal/tick"
)

// coreSystem builds a one-schedule system for one core with the given
// partitions splitting a 100-tick MTF evenly.
func coreSystem(parts ...model.PartitionName) *model.System {
	n := tick.Ticks(len(parts))
	slot := 100 / n
	s := model.Schedule{Name: "main", MTF: 100}
	for i, p := range parts {
		s.Requirements = append(s.Requirements, model.Requirement{
			Partition: p, Cycle: 100, Budget: slot,
		})
		s.Windows = append(s.Windows, model.Window{
			Partition: p, Offset: tick.Ticks(i) * slot, Duration: slot,
		})
	}
	return &model.System{Partitions: parts, Schedules: []model.Schedule{s}}
}

func workerInit(name string, period, wcet tick.Ticks, out *[]string) core.InitFunc {
	return func(sv *core.Services) {
		sv.CreateProcess(model.TaskSpec{
			Name: name, Period: period, Deadline: period,
			BasePriority: 1, WCET: wcet, Periodic: true,
		}, func(sv *core.Services) {
			for {
				sv.Compute(wcet)
				if out != nil {
					*out = append(*out, name)
				}
				sv.PeriodicWait()
			}
		})
		sv.StartProcess(name)
		sv.SetPartitionMode(model.ModeNormal)
	}
}

func startDual(t *testing.T, cfg Config) *Module {
	t.Helper()
	m, err := NewModule(cfg)
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	t.Cleanup(m.Shutdown)
	if err := m.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return m
}

func TestValidation(t *testing.T) {
	if _, err := NewModule(Config{}); !errors.Is(err, ErrNoCores) {
		t.Errorf("no cores = %v", err)
	}
	// Affinity conflict: partition A on both cores.
	cfg := Config{Cores: []core.Config{
		{System: coreSystem("A"), Partitions: []core.PartitionConfig{{Name: "A"}}},
		{System: coreSystem("A"), Partitions: []core.PartitionConfig{{Name: "A"}}},
	}}
	if _, err := NewModule(cfg); !errors.Is(err, ErrAffinityConflict) {
		t.Errorf("affinity conflict = %v", err)
	}
	if err := VerifyAffinity(cfg); !errors.Is(err, ErrAffinityConflict) {
		t.Errorf("VerifyAffinity = %v", err)
	}
	// Per-core channels are rejected.
	cfg2 := Config{Cores: []core.Config{{
		System:     coreSystem("A"),
		Partitions: []core.PartitionConfig{{Name: "A"}},
		Queuing: []ipc.QueuingConfig{{
			Name: "x", MaxMessage: 8, Depth: 1,
			Source:      ipc.PortRef{Partition: "A", Port: "o"},
			Destination: ipc.PortRef{Partition: "A", Port: "i"},
		}},
	}}}
	if _, err := NewModule(cfg2); !errors.Is(err, ErrPerCoreChannels) {
		t.Errorf("per-core channels = %v", err)
	}
}

// TestParallelWindows: partitions on different cores hold overlapping time
// windows — the exact parallelism the paper's future work names — and both
// make full progress in the same global time span.
func TestParallelWindows(t *testing.T) {
	var aDone, bDone []string
	m := startDual(t, Config{
		Cores: []core.Config{
			{System: coreSystem("A"), Partitions: []core.PartitionConfig{
				{Name: "A", Init: workerInit("wa", 100, 60, &aDone)},
			}},
			{System: coreSystem("B"), Partitions: []core.PartitionConfig{
				{Name: "B", Init: workerInit("wb", 100, 60, &bDone)},
			}},
		},
	})
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Each partition owns 100% of its core: both complete 10 activations of
	// 60 ticks in 1000 global ticks — impossible on one core (120% load).
	if len(aDone) != 10 || len(bDone) != 10 {
		t.Fatalf("activations = %d/%d, want 10/10 (parallel windows)", len(aDone), len(bDone))
	}
	if m.Cores() != 2 {
		t.Error("Cores() wrong")
	}
	if m.Now() != 1000 {
		t.Errorf("Now = %d", m.Now())
	}
}

// TestCrossCoreChannel: a queuing channel connects partitions on different
// cores through the shared router.
func TestCrossCoreChannel(t *testing.T) {
	var got []string
	m := startDual(t, Config{
		Sampling: nil,
		Queuing: []ipc.QueuingConfig{{
			Name: "link", MaxMessage: 32, Depth: 8,
			Source:      ipc.PortRef{Partition: "A", Port: "o"},
			Destination: ipc.PortRef{Partition: "B", Port: "i"},
		}},
		Cores: []core.Config{
			{System: coreSystem("A"), Partitions: []core.PartitionConfig{
				{Name: "A", Init: func(sv *core.Services) {
					sv.CreateQueuingPort("o", apex.Source)
					sv.CreateProcess(model.TaskSpec{
						Name: "tx", Period: 100, Deadline: 100,
						BasePriority: 1, WCET: 10, Periodic: true,
					}, func(sv *core.Services) {
						n := byte('a')
						for {
							sv.Compute(5)
							sv.SendQueuingMessage("o", []byte{n}, 0)
							n++
							sv.PeriodicWait()
						}
					})
					sv.StartProcess("tx")
					sv.SetPartitionMode(model.ModeNormal)
				}},
			}},
			{System: coreSystem("B"), Partitions: []core.PartitionConfig{
				{Name: "B", Init: func(sv *core.Services) {
					sv.CreateQueuingPort("i", apex.Destination)
					sv.CreateProcess(model.TaskSpec{
						Name: "rx", Period: 100, Deadline: 100,
						BasePriority: 1, WCET: 10, Periodic: true,
					}, func(sv *core.Services) {
						for {
							sv.Compute(5)
							for {
								data, rc := sv.ReceiveQueuingMessage("i", 0)
								if rc != apex.NoError {
									break
								}
								got = append(got, string(data))
							}
							sv.PeriodicWait()
						}
					})
					sv.StartProcess("rx")
					sv.SetPartitionMode(model.ModeNormal)
				}},
			}},
		},
	})
	if err := m.Run(600); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(got, "")
	if len(joined) < 4 || !strings.HasPrefix(joined, "abc") {
		t.Fatalf("cross-core messages = %q, want ordered a,b,c,...", joined)
	}
}

// TestSharedHealthMonitor: a deadline miss on core 1 is visible in the
// module-wide health monitor, attributed to its partition, and invisible to
// core 0's partitions.
func TestSharedHealthMonitor(t *testing.T) {
	m := startDual(t, Config{
		Cores: []core.Config{
			{System: coreSystem("A"), Partitions: []core.PartitionConfig{
				{Name: "A", Init: workerInit("ok", 100, 10, nil)},
			}},
			{System: coreSystem("B"), Partitions: []core.PartitionConfig{
				{Name: "B", Init: func(sv *core.Services) {
					sv.CreateProcess(model.TaskSpec{
						Name: "late", Period: 100, Deadline: 50,
						BasePriority: 1, WCET: 40, Periodic: true,
					}, func(sv *core.Services) {
						for {
							sv.Compute(1 << 30)
						}
					})
					sv.StartProcess("late")
					sv.SetPartitionMode(model.ModeNormal)
				}},
			}},
		},
	})
	if err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Health().EventsFor("B")); got == 0 {
		t.Fatal("no HM events for B on the shared monitor")
	}
	if got := len(m.Health().EventsFor("A")); got != 0 {
		t.Errorf("HM events leaked to A: %d", got)
	}
	misses := m.TraceKind(core.EvDeadlineMiss)
	if len(misses) == 0 {
		t.Fatal("no misses in merged trace")
	}
	// Merged trace is time-ordered.
	events := m.Trace()
	for i := 1; i < len(events); i++ {
		if events[i-1].Time > events[i].Time {
			t.Fatalf("merged trace out of order at %d", i)
		}
	}
}

// TestSharedMemoryIsolationAcrossCores: partitions on different cores get
// disjoint physical frames from the shared memory.
func TestSharedMemoryIsolationAcrossCores(t *testing.T) {
	m := startDual(t, Config{
		Cores: []core.Config{
			{System: coreSystem("A"), Partitions: []core.PartitionConfig{{Name: "A"}}},
			{System: coreSystem("B"), Partitions: []core.PartitionConfig{{Name: "B"}}},
		},
	})
	mem := m.Memory()
	if err := mem.WriteIn("A", 0x0010_0000, []byte("core0-secret"), mmu.PrivPOS); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if err := mem.ReadIn("B", 0x0010_0000, buf, mmu.PrivPOS); err != nil {
		t.Fatal(err)
	}
	if string(buf) == "core0-secret" {
		t.Fatal("cross-core spatial separation violated")
	}
	pt, idx, err := m.Partition("A")
	if err != nil || idx != 0 || pt.Name() != "A" {
		t.Errorf("Partition(A) = %v %d %v", pt, idx, err)
	}
	if _, _, err := m.Partition("Z"); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("Partition(Z) = %v", err)
	}
	if _, err := m.Core(0); err != nil {
		t.Errorf("Core(0) = %v", err)
	}
	if _, err := m.Core(5); err == nil {
		t.Error("Core(5) should fail")
	}
}

// TestPerCoreScheduleSwitch: mode-based schedules remain per core — a
// switch on core 0 does not disturb core 1.
func TestPerCoreScheduleSwitch(t *testing.T) {
	sysA := coreSystem("A")
	alt := sysA.Schedules[0]
	alt.Name = "alt"
	sysA.Schedules = append(sysA.Schedules, alt)
	m := startDual(t, Config{
		Cores: []core.Config{
			{System: sysA, Partitions: []core.PartitionConfig{
				{Name: "A", System: true, Init: workerInit("wa", 100, 10, nil)},
			}},
			{System: coreSystem("B"), Partitions: []core.PartitionConfig{
				{Name: "B", Init: workerInit("wb", 100, 10, nil)},
			}},
		},
	})
	if err := m.Run(50); err != nil {
		t.Fatal(err)
	}
	pt, _, err := m.Partition("A")
	if err != nil {
		t.Fatal(err)
	}
	if rc := pt.KernelServices().SetModuleScheduleByName("alt"); rc != apex.NoError {
		t.Fatalf("switch rc = %v", rc)
	}
	if err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	c0, _ := m.Core(0)
	c1, _ := m.Core(1)
	if c0.ScheduleStatus().CurrentName != "alt" {
		t.Errorf("core 0 schedule = %s", c0.ScheduleStatus().CurrentName)
	}
	if c1.ScheduleStatus().CurrentName != "main" {
		t.Errorf("core 1 schedule = %s, must be untouched", c1.ScheduleStatus().CurrentName)
	}
}

// TestDeterminismAcrossCores: two runs of a dual-core module produce
// identical merged traces.
func TestDeterminismAcrossCores(t *testing.T) {
	run := func() []string {
		var aDone, bDone []string
		m := startDual(t, Config{
			Cores: []core.Config{
				{System: coreSystem("A"), Partitions: []core.PartitionConfig{
					{Name: "A", Init: workerInit("wa", 100, 30, &aDone)},
				}},
				{System: coreSystem("B"), Partitions: []core.PartitionConfig{
					{Name: "B", Init: workerInit("wb", 50, 10, &bDone)},
				}},
			},
		})
		if err := m.Run(500); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, e := range m.Trace() {
			lines = append(lines, e.String())
		}
		m.Shutdown()
		return lines
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestCoreEventAttribution: partitions on different cores hold overlapping
// windows; every fine-grained spine event (window activation, heir
// selection, preemption) is tagged with the core that emitted it, and the
// shared spine's stream is deterministically ordered — time never
// decreases, and within one global tick the per-core scheduling events
// appear in core index order.
func TestCoreEventAttribution(t *testing.T) {
	run := func() []obs.Event {
		all := obs.NewRing(1 << 16) // unfiltered sink: captures every spine kind
		m := startDual(t, Config{
			Sinks: []obs.Sink{all},
			Cores: []core.Config{
				{System: coreSystem("A"), Partitions: []core.PartitionConfig{
					{Name: "A", Init: workerInit("wa", 100, 60, nil)},
				}},
				{System: coreSystem("B"), Partitions: []core.PartitionConfig{
					{Name: "B", Init: workerInit("wb", 50, 20, nil)},
				}},
			},
		})
		if err := m.Run(400); err != nil {
			t.Fatal(err)
		}
		m.Shutdown()
		return all.Events()
	}

	events := run()
	partToCore := map[model.PartitionName]int{"A": 0, "B": 1}
	sched := 0
	lastTime, lastCoreAt := tick.Ticks(0), 0
	for i, e := range events {
		switch e.Kind {
		case obs.KindWindowActivation, obs.KindHeirSelection, obs.KindPreemption,
			obs.KindPartitionSwitch:
			// Per-core scheduling events must carry their partition's core.
			if e.Partition != "" {
				if want := partToCore[e.Partition]; e.Core != want {
					t.Fatalf("event %d (%s %s) tagged core %d, want %d",
						i, e.Kind, e.Partition, e.Core, want)
				}
			}
			sched++
			// Deterministic order: time monotone; within a tick, core
			// index order (cores are stepped in index order).
			if e.Time < lastTime {
				t.Fatalf("event %d: time went backwards (%d after %d)", i, e.Time, lastTime)
			}
			if e.Time == lastTime && e.Core < lastCoreAt {
				t.Fatalf("event %d: core %d after core %d within tick %d",
					i, e.Core, lastCoreAt, e.Time)
			}
			lastTime, lastCoreAt = e.Time, e.Core
		}
	}
	if sched == 0 {
		t.Fatal("no scheduling events captured")
	}
	for _, want := range []int{0, 1} {
		found := false
		for _, e := range events {
			if e.Kind == obs.KindWindowActivation && e.Core == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no window activation attributed to core %d", want)
		}
	}

	// Two runs produce the identical full event stream (tags included).
	again := run()
	if len(again) != len(events) {
		t.Fatalf("event counts differ across runs: %d vs %d", len(again), len(events))
	}
	for i := range events {
		if events[i] != again[i] {
			t.Fatalf("streams diverge at %d:\n%+v\n%+v", i, events[i], again[i])
		}
	}
}

// TestMulticoreMetricsSnapshot: the shared spine's registry aggregates
// events from every core.
func TestMulticoreMetricsSnapshot(t *testing.T) {
	m := startDual(t, Config{
		Cores: []core.Config{
			{System: coreSystem("A"), Partitions: []core.PartitionConfig{
				{Name: "A", Init: workerInit("wa", 100, 10, nil)},
			}},
			{System: coreSystem("B"), Partitions: []core.PartitionConfig{
				{Name: "B", Init: workerInit("wb", 100, 10, nil)},
			}},
		},
	})
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	snap := m.Metrics()
	if snap.Events == 0 {
		t.Fatal("empty metrics snapshot")
	}
	if snap.CountKind(obs.KindWindowActivation) == 0 {
		t.Errorf("no window activations counted: %v", snap.Counts)
	}
	if snap.CountKind(obs.KindHeirSelection) == 0 {
		t.Errorf("no heir selections counted: %v", snap.Counts)
	}
}

// TestCoreHaltIsolated: a SHUTDOWN_MODULE decision on one core halts that
// core while the other keeps running; the multicore module halts only when
// all cores halt.
func TestCoreHaltIsolated(t *testing.T) {
	m := startDual(t, Config{
		Cores: []core.Config{
			{System: coreSystem("A"), Partitions: []core.PartitionConfig{
				{Name: "A", Init: func(sv *core.Services) {
					sv.CreateProcess(model.TaskSpec{
						Name: "late", Period: 100, Deadline: 50,
						BasePriority: 1, WCET: 40, Periodic: true,
					}, func(sv *core.Services) {
						for {
							sv.Compute(1 << 30)
						}
					})
					sv.StartProcess("late")
					sv.SetPartitionMode(model.ModeNormal)
				},
					HMProcessTable: hm.Table{
						hm.ErrDeadlineMissed: hm.Rule{Action: hm.ActionShutdownModule},
					}},
			}},
			{System: coreSystem("B"), Partitions: []core.PartitionConfig{
				{Name: "B", Init: workerInit("wb", 100, 10, nil)},
			}},
		},
	})
	if err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	c0, _ := m.Core(0)
	c1, _ := m.Core(1)
	if !c0.Halted() {
		t.Fatal("core 0 should have halted")
	}
	if c1.Halted() {
		t.Fatal("core 1 must keep running")
	}
	if m.Halted() {
		t.Fatal("module halts only when all cores halt")
	}
	// Stepping past a halted core is fine, and the global clock advances.
	before := m.Now()
	if err := m.Run(50); err != nil {
		t.Fatal(err)
	}
	if m.Now() != before+50 {
		t.Errorf("clock stalled: %d → %d", before, m.Now())
	}
	// Shut down the rest: the module is halted and Run returns immediately.
	m.Shutdown()
	if !m.Halted() {
		t.Fatal("all cores down, module must report halted")
	}
	if err := m.Run(10); err != nil {
		t.Errorf("Run after halt = %v", err)
	}
}
