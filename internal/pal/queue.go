// Package pal implements the AIR POS Adaptation Layer (paper Sect. 2.2, 5):
// the per-partition component that wraps the partition operating system,
// keeps the process deadline information ordered by deadline time, and runs
// the surrogate clock tick announcement routine (Algorithm 3, Fig. 7) that
// detects and reports process deadline violations to Health Monitoring.
//
// Two deadline queue implementations are provided, turning the paper's
// Sect. 5.3 engineering discussion into an executable ablation:
//
//   - ListQueue — the paper's choice: a sorted doubly linked list. Earliest
//     retrieval and removal of a detected violation are O(1) (work done
//     inside the clock tick ISR); register/update is O(n) (work done in the
//     partition's own window).
//   - TreeQueue — the discussed alternative: a self-balancing (AVL) binary
//     search tree with O(log n) register/update but O(log n) earliest
//     retrieval.
package pal

import (
	"air/internal/pos"
	"air/internal/tick"
)

// Entry is one registered process deadline.
type Entry struct {
	PID      pos.ProcessID
	Name     string
	Deadline tick.Ticks
}

// DeadlineQueue keeps process deadlines in ascending deadline order, keyed by
// process. Registering an already-registered process updates (moves) its
// entry, per Sect. 5.2: "if necessary, this information will be moved to keep
// the deadlines sorted by ascending deadline time order".
type DeadlineQueue interface {
	// Register inserts or updates the deadline for e.PID.
	Register(e Entry)
	// Unregister removes the deadline for pid, reporting whether one was
	// registered.
	Unregister(pid pos.ProcessID) bool
	// Earliest returns the entry with the smallest deadline.
	Earliest() (Entry, bool)
	// RemoveEarliest removes the entry returned by Earliest.
	RemoveEarliest()
	// Len returns the number of registered deadlines.
	Len() int
	// Entries returns all entries in ascending deadline order.
	Entries() []Entry
	// Clone returns a deep copy of the queue (used by module snapshot/fork;
	// the copy and the original never share mutable state).
	Clone() DeadlineQueue
}

// listNode is a node of the sorted doubly linked list.
type listNode struct {
	entry      Entry
	prev, next *listNode
}

// ListQueue is the paper's production implementation: a sorted doubly linked
// list with a per-process index map. "Since we already have a pointer to the
// node to be removed, the complexity of the deadline removal from the linked
// list will effectively be O(1)" (Sect. 5.3).
type ListQueue struct {
	head, tail *listNode
	index      map[pos.ProcessID]*listNode
}

var _ DeadlineQueue = (*ListQueue)(nil)

// NewListQueue creates an empty list-backed deadline queue.
func NewListQueue() *ListQueue {
	return &ListQueue{index: make(map[pos.ProcessID]*listNode)}
}

// Register inserts or updates pid's deadline, keeping ascending order.
func (q *ListQueue) Register(e Entry) {
	if n, ok := q.index[e.PID]; ok {
		q.unlink(n)
	}
	n := &listNode{entry: e}
	q.index[e.PID] = n
	// O(n) ordered insertion — performed in the partition's execution
	// window, not inside the clock tick ISR.
	var after *listNode
	for cur := q.head; cur != nil; cur = cur.next {
		if less(cur.entry, e) {
			after = cur
			continue
		}
		break
	}
	if after == nil { // new head
		n.next = q.head
		if q.head != nil {
			q.head.prev = n
		}
		q.head = n
		if q.tail == nil {
			q.tail = n
		}
		return
	}
	n.prev = after
	n.next = after.next
	after.next = n
	if n.next != nil {
		n.next.prev = n
	} else {
		q.tail = n
	}
}

// Unregister removes pid's deadline in O(1) given the index map.
func (q *ListQueue) Unregister(pid pos.ProcessID) bool {
	n, ok := q.index[pid]
	if !ok {
		return false
	}
	q.unlink(n)
	return true
}

// Earliest returns the head of the list — O(1), the property the paper
// requires for verification inside the system clock ISR.
func (q *ListQueue) Earliest() (Entry, bool) {
	if q.head == nil {
		return Entry{}, false
	}
	return q.head.entry, true
}

// RemoveEarliest unlinks the head in O(1).
func (q *ListQueue) RemoveEarliest() {
	if q.head != nil {
		q.unlink(q.head)
	}
}

// Len returns the number of registered deadlines.
func (q *ListQueue) Len() int { return len(q.index) }

// Entries returns the registered deadlines in ascending order.
func (q *ListQueue) Entries() []Entry {
	out := make([]Entry, 0, len(q.index))
	for cur := q.head; cur != nil; cur = cur.next {
		out = append(out, cur.entry)
	}
	return out
}

// Clone deep-copies the list by re-inserting the (already sorted) entries.
func (q *ListQueue) Clone() DeadlineQueue {
	c := NewListQueue()
	for cur := q.head; cur != nil; cur = cur.next {
		c.Register(cur.entry)
	}
	return c
}

func (q *ListQueue) unlink(n *listNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	n.prev, n.next = nil, nil
	delete(q.index, n.entry.PID)
}

// less orders entries by (deadline, pid); the pid tiebreak makes ordering
// total and deterministic.
//
//air:hotpath
func less(a, b Entry) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return a.PID < b.PID
}
