package pal

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"air/internal/pos"
	"air/internal/tick"
)

// queueImpls enumerates both deadline queue implementations so every test
// runs against each — the list (paper's choice) and the tree (alternative).
func queueImpls() map[string]func() DeadlineQueue {
	return map[string]func() DeadlineQueue{
		"list": func() DeadlineQueue { return NewListQueue() },
		"tree": func() DeadlineQueue { return NewTreeQueue() },
	}
}

func TestQueueBasicOrdering(t *testing.T) {
	for name, mk := range queueImpls() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if _, ok := q.Earliest(); ok {
				t.Fatal("empty queue has earliest")
			}
			q.Register(Entry{PID: 1, Name: "a", Deadline: 300})
			q.Register(Entry{PID: 2, Name: "b", Deadline: 100})
			q.Register(Entry{PID: 3, Name: "c", Deadline: 200})
			if q.Len() != 3 {
				t.Fatalf("Len = %d", q.Len())
			}
			e, ok := q.Earliest()
			if !ok || e.PID != 2 {
				t.Fatalf("earliest = %v", e)
			}
			entries := q.Entries()
			if len(entries) != 3 || entries[0].PID != 2 || entries[1].PID != 3 || entries[2].PID != 1 {
				t.Fatalf("entries = %v", entries)
			}
			q.RemoveEarliest()
			e, _ = q.Earliest()
			if e.PID != 3 {
				t.Fatalf("after remove earliest = %v", e)
			}
		})
	}
}

func TestQueueUpdateMovesEntry(t *testing.T) {
	// Sect. 5.2: a replenish updates the deadline; the entry must move to
	// keep ascending order, not duplicate.
	for name, mk := range queueImpls() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			q.Register(Entry{PID: 1, Name: "a", Deadline: 100})
			q.Register(Entry{PID: 2, Name: "b", Deadline: 200})
			q.Register(Entry{PID: 1, Name: "a", Deadline: 300}) // replenish
			if q.Len() != 2 {
				t.Fatalf("Len = %d, want 2 (update, not insert)", q.Len())
			}
			e, _ := q.Earliest()
			if e.PID != 2 {
				t.Fatalf("earliest = %v, want pid 2", e)
			}
			// Update moving earlier.
			q.Register(Entry{PID: 1, Name: "a", Deadline: 50})
			e, _ = q.Earliest()
			if e.PID != 1 || e.Deadline != 50 {
				t.Fatalf("earliest = %v, want pid 1 at 50", e)
			}
		})
	}
}

func TestQueueUnregister(t *testing.T) {
	for name, mk := range queueImpls() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			q.Register(Entry{PID: 1, Deadline: 100})
			q.Register(Entry{PID: 2, Deadline: 200})
			if !q.Unregister(1) {
				t.Fatal("Unregister(1) = false")
			}
			if q.Unregister(1) {
				t.Fatal("double Unregister(1) = true")
			}
			if q.Unregister(99) {
				t.Fatal("Unregister(unknown) = true")
			}
			if q.Len() != 1 {
				t.Fatalf("Len = %d", q.Len())
			}
			e, _ := q.Earliest()
			if e.PID != 2 {
				t.Fatalf("earliest = %v", e)
			}
		})
	}
}

func TestQueueEqualDeadlinesTiebreak(t *testing.T) {
	for name, mk := range queueImpls() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			q.Register(Entry{PID: 5, Deadline: 100})
			q.Register(Entry{PID: 2, Deadline: 100})
			q.Register(Entry{PID: 9, Deadline: 100})
			entries := q.Entries()
			want := []pos.ProcessID{2, 5, 9}
			for i, w := range want {
				if entries[i].PID != w {
					t.Fatalf("entries = %v, want pid order %v", entries, want)
				}
			}
		})
	}
}

func TestQueueRemoveEarliestEmpty(t *testing.T) {
	for name, mk := range queueImpls() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			q.RemoveEarliest() // must not panic
			if q.Len() != 0 {
				t.Fatal("phantom entry")
			}
		})
	}
}

// TestQueueEquivalenceProperty drives both implementations with the same
// random operation sequence and requires identical observable behaviour —
// the tree is validated against the list as a reference model.
func TestQueueEquivalenceProperty(t *testing.T) {
	type op struct {
		Kind     uint8
		PID      uint8
		Deadline uint16
	}
	prop := func(ops []op) bool {
		list := NewListQueue()
		avl := NewTreeQueue()
		for _, o := range ops {
			pid := pos.ProcessID(o.PID%32 + 1)
			switch o.Kind % 3 {
			case 0:
				e := Entry{PID: pid, Deadline: tick.Ticks(o.Deadline)}
				list.Register(e)
				avl.Register(e)
			case 1:
				if list.Unregister(pid) != avl.Unregister(pid) {
					return false
				}
			case 2:
				list.RemoveEarliest()
				avl.RemoveEarliest()
			}
			if list.Len() != avl.Len() {
				return false
			}
			le, lok := list.Earliest()
			ae, aok := avl.Earliest()
			if lok != aok || le != ae {
				return false
			}
			les, aes := list.Entries(), avl.Entries()
			for i := range les {
				if les[i] != aes[i] {
					return false
				}
			}
			// Entries must be ascending.
			if !sort.SliceIsSorted(les, func(i, j int) bool { return less(les[i], les[j]) }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTreeBalanceInvariant checks AVL height bounds under churn: height must
// stay O(log n) (≤ 1.44·log2(n+2)).
func TestTreeBalanceInvariant(t *testing.T) {
	q := NewTreeQueue()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		q.Register(Entry{
			PID:      pos.ProcessID(i + 1),
			Deadline: tick.Ticks(rng.Intn(10000)),
		})
	}
	// Remove half at random.
	for i := 0; i < 1000; i++ {
		q.Unregister(pos.ProcessID(rng.Intn(2000) + 1))
	}
	var checkHeights func(n *treeNode) int
	ok := true
	checkHeights = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		hl, hr := checkHeights(n.left), checkHeights(n.right)
		if hl-hr > 1 || hr-hl > 1 {
			ok = false
		}
		h := hl
		if hr > h {
			h = hr
		}
		return h + 1
	}
	checkHeights(q.root)
	if !ok {
		t.Fatal("AVL balance invariant violated")
	}
	// BST order invariant via Entries.
	entries := q.Entries()
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return less(entries[i], entries[j]) }) {
		t.Fatal("in-order traversal not sorted")
	}
	if len(entries) != q.Len() {
		t.Fatalf("Entries len %d != Len %d", len(entries), q.Len())
	}
}
