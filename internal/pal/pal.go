package pal

import (
	"air/internal/hm"
	"air/internal/model"
	"air/internal/pos"
	"air/internal/tick"
)

// Violation is one detected process deadline violation, produced by the
// Algorithm 3 verification loop together with the Health Monitor's decision.
type Violation struct {
	Entry    Entry
	Detected tick.Ticks
	Decision hm.Decision
}

// HealthReporter is the slice of the Health Monitor the PAL needs: the
// HM_DEADLINEVIOLATED primitive of Algorithm 3 line 6.
type HealthReporter interface {
	ReportProcess(p model.PartitionName, process string, code hm.ErrorCode, msg string) hm.Decision
}

// PAL is the POS Adaptation Layer instance of one partition: it wraps the
// partition's POS kernel, implements the pos.DeadlineObserver interface the
// APEX primitives use to register/update/unregister deadlines (Sect. 5.2,
// Fig. 6), and verifies deadlines inside the surrogate clock tick
// announcement routine (Sect. 5.3, Fig. 7, Algorithm 3).
type PAL struct {
	partition model.PartitionName
	kernel    *pos.Kernel
	queue     DeadlineQueue
	health    HealthReporter
	now       func() tick.Ticks
}

var _ pos.DeadlineObserver = (*PAL)(nil)

// Config configures a PAL instance.
type Config struct {
	Partition model.PartitionName
	// Queue holds the deadline control structure; nil defaults to the
	// production ListQueue.
	Queue DeadlineQueue
	// Health receives HM_DEADLINEVIOLATED reports; nil disables reporting
	// (violations are still detected and returned).
	Health HealthReporter
	// Now supplies PAL_GETCURRENTTIME.
	Now func() tick.Ticks
}

// New creates a PAL. Attach the kernel afterwards with Bind (the kernel needs
// the PAL as its observer, so construction is two-phase).
func New(cfg Config) *PAL {
	if cfg.Queue == nil {
		cfg.Queue = NewListQueue()
	}
	if cfg.Now == nil {
		cfg.Now = func() tick.Ticks { return 0 }
	}
	return &PAL{
		partition: cfg.Partition,
		queue:     cfg.Queue,
		health:    cfg.Health,
		now:       cfg.Now,
	}
}

// Bind attaches the POS kernel whose clock announcements this PAL surrogates.
func (p *PAL) Bind(k *pos.Kernel) { p.kernel = k }

// Clone returns a copy of the PAL for module snapshot/fork, with the
// deadline queue deep-copied and the health reporter and clock rebound to
// the fork's instances. Bind the fork's kernel clone afterwards — the same
// two-phase construction as New, because kernel and PAL reference each
// other.
func (p *PAL) Clone(health HealthReporter, now func() tick.Ticks) *PAL {
	return &PAL{
		partition: p.partition,
		queue:     p.queue.Clone(),
		health:    health,
		now:       now,
	}
}

// Kernel returns the bound POS kernel.
func (p *PAL) Kernel() *pos.Kernel { return p.kernel }

// Partition returns the owning partition.
func (p *PAL) Partition() model.PartitionName { return p.partition }

// SetDeadline implements pos.DeadlineObserver: the register/update interface
// provided to the APEX services (Fig. 6).
func (p *PAL) SetDeadline(id pos.ProcessID, name string, deadline tick.Ticks) {
	p.queue.Register(Entry{PID: id, Name: name, Deadline: deadline})
}

// ClearDeadline implements pos.DeadlineObserver: the unregister interface.
func (p *PAL) ClearDeadline(id pos.ProcessID) {
	p.queue.Unregister(id)
}

// Deadlines returns the registered deadlines in ascending order.
func (p *PAL) Deadlines() []Entry { return p.queue.Entries() }

// Pending returns the number of registered deadlines.
func (p *PAL) Pending() int { return p.queue.Len() }

// TickAnnounce is the modified surrogate clock tick announcement routine of
// Fig. 7 and Algorithm 3. It is invoked by the core kernel with elapsed = 1
// on every tick the partition is active, and with the number of ticks elapsed
// since the partition last ran when the partition is (re-)dispatched — which
// is how a deadline exceeded while the partition was inactive is detected at
// the earliest possible instant.
//
// Steps, exactly as Algorithm 3:
//  1. announce the elapsed clock ticks to the native POS
//     (*POS_CLOCKTICKANNOUNCE), releasing delays and periodic processes;
//  2. verify the earliest deadline(s): while the earliest registered
//     deadline is before the current time, report HM_DEADLINEVIOLATED and
//     remove the deadline (O(1) per the queue's contract);
//  3. stop at the first deadline that has not been missed.
func (p *PAL) TickAnnounce(elapsed tick.Ticks) []Violation {
	now := p.now()
	if p.kernel != nil {
		p.kernel.ClockAnnounce(now)
	}
	_ = elapsed // elapsed is announced to the POS via now; kept for fidelity
	var violations []Violation
	for {
		e, ok := p.queue.Earliest()
		if !ok || e.Deadline >= now {
			// Algorithm 3 line 3–4: earliest deadline not missed → break.
			break
		}
		var decision hm.Decision
		if p.health != nil {
			decision = p.health.ReportProcess(
				p.partition, e.Name, hm.ErrDeadlineMissed, "process deadline violated")
		}
		p.queue.RemoveEarliest()
		violations = append(violations, Violation{
			Entry:    e,
			Detected: now,
			Decision: decision,
		})
	}
	return violations
}

// ViolationSet evaluates eq. (24) over the registered deadlines: the set of
// processes whose absolute deadline time is strictly before t. Unlike
// TickAnnounce it does not mutate the queue or report to HM — it is the
// model-level predicate, used by verification tooling and tests.
func (p *PAL) ViolationSet(t tick.Ticks) []Entry {
	var out []Entry
	for _, e := range p.queue.Entries() {
		if e.Deadline < t {
			out = append(out, e)
		}
	}
	return out
}
