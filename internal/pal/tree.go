package pal

import (
	"air/internal/pos"
)

// TreeQueue is the self-balancing binary search tree alternative the paper
// analyses in Sect. 5.3: register/update/unregister cost O(log n) instead of
// the list's O(n), but earliest retrieval walks to the leftmost node —
// O(log n) instead of O(1) — which is the wrong side of the tradeoff for
// work performed inside the clock tick ISR when n is typically small.
//
// The implementation is an AVL tree keyed by (deadline, pid) with a
// per-process index map giving direct access for updates.
type TreeQueue struct {
	root  *treeNode
	index map[pos.ProcessID]Entry // pid → current key (for update/removal)
}

var _ DeadlineQueue = (*TreeQueue)(nil)

type treeNode struct {
	entry       Entry
	left, right *treeNode
	height      int
}

// NewTreeQueue creates an empty AVL-backed deadline queue.
func NewTreeQueue() *TreeQueue {
	return &TreeQueue{index: make(map[pos.ProcessID]Entry)}
}

// Register inserts or updates pid's deadline in O(log n).
func (q *TreeQueue) Register(e Entry) {
	if old, ok := q.index[e.PID]; ok {
		q.root = remove(q.root, old)
	}
	q.index[e.PID] = e
	q.root = insert(q.root, e)
}

// Unregister removes pid's deadline in O(log n).
func (q *TreeQueue) Unregister(pid pos.ProcessID) bool {
	old, ok := q.index[pid]
	if !ok {
		return false
	}
	q.root = remove(q.root, old)
	delete(q.index, pid)
	return true
}

// Earliest walks to the leftmost node — O(log n).
func (q *TreeQueue) Earliest() (Entry, bool) {
	if q.root == nil {
		return Entry{}, false
	}
	n := q.root
	for n.left != nil {
		n = n.left
	}
	return n.entry, true
}

// RemoveEarliest removes the leftmost node — O(log n).
func (q *TreeQueue) RemoveEarliest() {
	e, ok := q.Earliest()
	if !ok {
		return
	}
	q.root = remove(q.root, e)
	delete(q.index, e.PID)
}

// Len returns the number of registered deadlines.
func (q *TreeQueue) Len() int { return len(q.index) }

// Entries returns the registered deadlines in ascending order.
func (q *TreeQueue) Entries() []Entry {
	out := make([]Entry, 0, len(q.index))
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.entry)
		walk(n.right)
	}
	walk(q.root)
	return out
}

// Clone deep-copies the tree structure node by node (shape-preserving, so
// the copy behaves identically to the original under every operation order).
func (q *TreeQueue) Clone() DeadlineQueue {
	c := NewTreeQueue()
	var cp func(n *treeNode) *treeNode
	cp = func(n *treeNode) *treeNode {
		if n == nil {
			return nil
		}
		return &treeNode{entry: n.entry, left: cp(n.left), right: cp(n.right), height: n.height}
	}
	c.root = cp(q.root)
	for pid, e := range q.index { //air:allow(maprange): map-to-map copy; order-insensitive
		c.index[pid] = e
	}
	return c
}

// --- AVL machinery ---

func height(n *treeNode) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update(n *treeNode) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func balanceFactor(n *treeNode) int { return height(n.left) - height(n.right) }

func rotateRight(y *treeNode) *treeNode {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	update(x)
	return x
}

func rotateLeft(x *treeNode) *treeNode {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	update(y)
	return y
}

func rebalance(n *treeNode) *treeNode {
	update(n)
	bf := balanceFactor(n)
	switch {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func insert(n *treeNode, e Entry) *treeNode {
	if n == nil {
		return &treeNode{entry: e, height: 1}
	}
	if less(e, n.entry) {
		n.left = insert(n.left, e)
	} else {
		n.right = insert(n.right, e)
	}
	return rebalance(n)
}

func remove(n *treeNode, e Entry) *treeNode {
	if n == nil {
		return nil
	}
	switch {
	case less(e, n.entry):
		n.left = remove(n.left, e)
	case less(n.entry, e):
		n.right = remove(n.right, e)
	default:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.entry = succ.entry
		n.right = remove(n.right, succ.entry)
	}
	return rebalance(n)
}
