package pal

import (
	"testing"

	"air/internal/hm"
	"air/internal/model"
	"air/internal/pos"
	"air/internal/tick"
)

type palFixture struct {
	clock  *tick.Ticks
	pal    *PAL
	kernel *pos.Kernel
	hm     *hm.Monitor
}

func newFixture(t *testing.T) *palFixture {
	t.Helper()
	now := new(tick.Ticks)
	nowFn := func() tick.Ticks { return *now }
	monitor := hm.New(hm.Config{Now: nowFn})
	p := New(Config{Partition: "P1", Health: monitor, Now: nowFn})
	k := pos.NewKernel(pos.Options{
		Partition: "P1",
		Now:       nowFn,
		Observer:  p,
	})
	p.Bind(k)
	return &palFixture{clock: now, pal: p, kernel: k, hm: monitor}
}

func (f *palFixture) createStarted(t *testing.T, name string, period tick.Ticks) pos.ProcessID {
	t.Helper()
	id, err := f.kernel.Create(model.TaskSpec{
		Name: name, Period: period, Deadline: period, BasePriority: 5,
		WCET: 1, Periodic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.kernel.Start(id); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStartRegistersDeadlineInPAL(t *testing.T) {
	f := newFixture(t)
	id := f.createStarted(t, "a", 100)
	entries := f.pal.Deadlines()
	if len(entries) != 1 || entries[0].PID != id || entries[0].Deadline != 100 {
		t.Fatalf("deadlines = %v", entries)
	}
	if f.pal.Pending() != 1 {
		t.Fatalf("Pending = %d", f.pal.Pending())
	}
	if err := f.kernel.Stop(id); err != nil {
		t.Fatal(err)
	}
	if f.pal.Pending() != 0 {
		t.Fatal("stop did not unregister deadline")
	}
}

func TestTickAnnounceNoViolationBeforeDeadline(t *testing.T) {
	f := newFixture(t)
	f.createStarted(t, "a", 100)
	for *f.clock = 1; *f.clock <= 100; *f.clock++ {
		if v := f.pal.TickAnnounce(1); len(v) != 0 {
			t.Fatalf("violation at t=%d: %v", *f.clock, v)
		}
	}
	// Deadline is 100; at t=101 it is strictly in the past (eq. 24).
	*f.clock = 101
	v := f.pal.TickAnnounce(1)
	if len(v) != 1 {
		t.Fatalf("want violation at t=101, got %v", v)
	}
	if v[0].Entry.Name != "a" || v[0].Detected != 101 {
		t.Errorf("violation = %+v", v[0])
	}
	// Reported once: the entry was removed.
	if v := f.pal.TickAnnounce(1); len(v) != 0 {
		t.Fatalf("violation reported twice: %v", v)
	}
	if f.hm.Count(hm.ErrDeadlineMissed) != 1 {
		t.Errorf("HM count = %d, want 1", f.hm.Count(hm.ErrDeadlineMissed))
	}
}

func TestTickAnnounceMultipleExpiredDeadlines(t *testing.T) {
	// Algorithm 3: "following deadlines may subsequently be verified until
	// one has not been missed" — a catch-up announce after a long inactive
	// span reports all expired deadlines at once, in ascending order.
	f := newFixture(t)
	f.createStarted(t, "a", 50)
	f.createStarted(t, "b", 100)
	f.createStarted(t, "c", 800)
	*f.clock = 400 // partition was inactive from 0 to 400
	v := f.pal.TickAnnounce(400)
	if len(v) != 2 {
		t.Fatalf("violations = %v, want a and b", v)
	}
	if v[0].Entry.Name != "a" || v[1].Entry.Name != "b" {
		t.Errorf("violations out of order: %v", v)
	}
	// c (deadline 800) survives.
	if f.pal.Pending() == 0 {
		t.Error("future deadline was consumed")
	}
}

// TestDetectionLatencyOptimal is experiment F5: a violation is detected at
// the first announce at/after expiry — per-tick announces detect at
// deadline+1; a dispatch announce detects at the dispatch instant.
func TestDetectionLatencyOptimal(t *testing.T) {
	// Active partition: per-tick detection.
	f := newFixture(t)
	f.createStarted(t, "a", 10)
	for *f.clock = 1; *f.clock <= 10; *f.clock++ {
		if v := f.pal.TickAnnounce(1); len(v) != 0 {
			t.Fatalf("early detection at %d", *f.clock)
		}
	}
	*f.clock = 11
	if v := f.pal.TickAnnounce(1); len(v) != 1 || v[0].Detected != 11 {
		t.Fatalf("active detection = %v, want at t=11", v)
	}

	// Inactive partition: detection exactly at next dispatch.
	g := newFixture(t)
	g.createStarted(t, "b", 10)
	*g.clock = 57 // dispatched again only at t=57
	v := g.pal.TickAnnounce(57)
	if len(v) != 1 || v[0].Detected != 57 {
		t.Fatalf("dispatch detection = %v, want at t=57", v)
	}
}

func TestPeriodicProcessMeetingDeadlinesNeverViolates(t *testing.T) {
	// A well-behaved periodic process that completes each activation
	// (PeriodicWait) before its deadline must never appear in a violation.
	f := newFixture(t)
	id := f.createStarted(t, "good", 100)
	for *f.clock = 1; *f.clock <= 1000; *f.clock++ {
		v := f.pal.TickAnnounce(1)
		if len(v) != 0 {
			t.Fatalf("spurious violation at t=%d: %v", *f.clock, v)
		}
		p, _ := f.kernel.Get(id)
		// Complete the activation 30 ticks after each release.
		if p.Eligible() && *f.clock%100 == 30 {
			if err := f.kernel.PeriodicWait(id); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestOverrunningProcessViolatesEveryActivation(t *testing.T) {
	// A faulty process that never completes re-registers a deadline at each
	// (late) PeriodicWait; each activation's deadline fires once.
	f := newFixture(t)
	id := f.createStarted(t, "faulty", 100)
	var total int
	for *f.clock = 1; *f.clock <= 1000; *f.clock++ {
		total += len(f.pal.TickAnnounce(1))
		// The faulty process "completes" long after its deadline, at
		// phase 150 of each doubled period.
		p, _ := f.kernel.Get(id)
		if p.Eligible() && *f.clock%200 == 150 {
			if err := f.kernel.PeriodicWait(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if total < 4 {
		t.Errorf("violations = %d, want repeated detections", total)
	}
	if f.hm.Count(hm.ErrDeadlineMissed) != total {
		t.Errorf("HM count %d != detected %d", f.hm.Count(hm.ErrDeadlineMissed), total)
	}
}

func TestViolationSetEq24(t *testing.T) {
	f := newFixture(t)
	f.createStarted(t, "a", 50)
	f.createStarted(t, "b", 200)
	// eq. (24) is strict: at t = D' the process is not yet in V(t).
	if got := f.pal.ViolationSet(50); len(got) != 0 {
		t.Errorf("V(50) = %v, want empty (strict inequality)", got)
	}
	if got := f.pal.ViolationSet(51); len(got) != 1 || got[0].Name != "a" {
		t.Errorf("V(51) = %v, want {a}", got)
	}
	if got := f.pal.ViolationSet(1000); len(got) != 2 {
		t.Errorf("V(1000) = %v, want both", got)
	}
	// ViolationSet must not mutate.
	if f.pal.Pending() != 2 {
		t.Error("ViolationSet mutated the queue")
	}
}

func TestTickAnnounceWithoutHealthReporter(t *testing.T) {
	now := new(tick.Ticks)
	nowFn := func() tick.Ticks { return *now }
	p := New(Config{Partition: "P1", Now: nowFn})
	k := pos.NewKernel(pos.Options{Partition: "P1", Now: nowFn, Observer: p})
	p.Bind(k)
	if p.Kernel() != k {
		t.Fatal("Kernel() accessor broken")
	}
	if p.Partition() != "P1" {
		t.Fatal("Partition() accessor broken")
	}
	id, err := k.Create(model.TaskSpec{
		Name: "a", Period: 10, Deadline: 10, WCET: 1, Periodic: true, BasePriority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	*now = 11
	v := p.TickAnnounce(11)
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Decision.Action != 0 {
		t.Error("decision should be zero without a health reporter")
	}
}

func TestTickAnnounceReleasesDelaysBeforeChecking(t *testing.T) {
	// Fig. 7 ordering: the POS clock announce runs first, so a process
	// released exactly at the dispatch instant becomes ready in the same
	// announce that checks deadlines.
	f := newFixture(t)
	id, err := f.kernel.Create(model.TaskSpec{
		Name: "delayed", Period: 100, Deadline: 100, BasePriority: 1,
		WCET: 1, Periodic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.kernel.DelayedStart(id, 40); err != nil {
		t.Fatal(err)
	}
	*f.clock = 40
	f.pal.TickAnnounce(40)
	proc, _ := f.kernel.Get(id)
	if proc.State != model.StateReady {
		t.Fatalf("state = %s, want ready after announce", proc.State)
	}
}

func TestPALWithTreeQueue(t *testing.T) {
	// The PAL works identically over the tree queue (ablation wiring).
	now := new(tick.Ticks)
	nowFn := func() tick.Ticks { return *now }
	monitor := hm.New(hm.Config{Now: nowFn})
	p := New(Config{Partition: "P1", Queue: NewTreeQueue(), Health: monitor, Now: nowFn})
	k := pos.NewKernel(pos.Options{Partition: "P1", Now: nowFn, Observer: p})
	p.Bind(k)
	id, err := k.Create(model.TaskSpec{
		Name: "a", Period: 10, Deadline: 10, WCET: 1, Periodic: true, BasePriority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Start(id); err != nil {
		t.Fatal(err)
	}
	*now = 11
	if v := p.TickAnnounce(11); len(v) != 1 {
		t.Fatalf("tree-backed PAL missed the violation: %v", v)
	}
}
