package pal

import (
	"sort"

	"air/internal/pos"
)

// HeapQueue is the compiled form of the deadline control structure: a binary
// min-heap over a flat, preallocated entry array with a dense pid→slot index.
// It keeps the paper's Sect. 5.3 cost profile — O(1) earliest retrieval for
// the clock tick ISR, O(log n) register/update/unregister in the partition's
// own window — while replacing the linked list's pointer-chasing nodes and
// per-insert allocations with contiguous storage that a snapshot fork can
// copy with two memmoves.
//
// Ordering is the same (deadline, pid) total order as the other queues, so
// the violation detection sequence — and therefore every trace byte — is
// identical whichever implementation a partition is configured with.
type HeapQueue struct {
	entries []Entry // heap-ordered by less()
	// slots maps ProcessID → index into entries, dense (pids are small
	// kernel-assigned ordinals); -1 marks an unregistered pid.
	slots []int32
}

var _ DeadlineQueue = (*HeapQueue)(nil)

// DefaultHeapCapacity is the entry storage preallocated by NewHeapQueue:
// sized for the process count of any bounded partition so steady-state
// operation never allocates.
const DefaultHeapCapacity = 64

// NewHeapQueue creates a heap-backed deadline queue with DefaultHeapCapacity
// preallocated entries.
func NewHeapQueue() *HeapQueue {
	return NewHeapQueueSize(DefaultHeapCapacity)
}

// NewHeapQueueSize creates a heap-backed deadline queue with storage for n
// entries preallocated (growing beyond n falls back to append).
func NewHeapQueueSize(n int) *HeapQueue {
	if n < 1 {
		n = 1
	}
	q := &HeapQueue{
		entries: make([]Entry, 0, n),
		slots:   make([]int32, n),
	}
	for i := range q.slots {
		q.slots[i] = -1
	}
	return q
}

// slot returns the heap index of pid, or -1.
func (q *HeapQueue) slot(pid pos.ProcessID) int32 {
	if int(pid) >= len(q.slots) {
		return -1
	}
	return q.slots[pid]
}

// setSlot records pid's heap index, growing the dense index if needed.
func (q *HeapQueue) setSlot(pid pos.ProcessID, i int32) {
	for int(pid) >= len(q.slots) {
		q.slots = append(q.slots, -1)
	}
	q.slots[pid] = i
}

// Register inserts or updates pid's deadline in O(log n).
func (q *HeapQueue) Register(e Entry) {
	if i := q.slot(e.PID); i >= 0 {
		q.entries[i] = e
		q.fix(int(i))
		return
	}
	q.entries = append(q.entries, e)
	q.setSlot(e.PID, int32(len(q.entries)-1))
	q.siftUp(len(q.entries) - 1)
}

// Unregister removes pid's deadline in O(log n).
func (q *HeapQueue) Unregister(pid pos.ProcessID) bool {
	i := q.slot(pid)
	if i < 0 {
		return false
	}
	q.removeAt(int(i))
	return true
}

// Earliest returns the heap root — O(1), the property the paper requires for
// verification inside the system clock ISR.
//
//air:hotpath
func (q *HeapQueue) Earliest() (Entry, bool) {
	if len(q.entries) == 0 {
		return Entry{}, false
	}
	return q.entries[0], true
}

// RemoveEarliest removes the heap root in O(log n).
//
//air:hotpath
func (q *HeapQueue) RemoveEarliest() {
	if len(q.entries) > 0 {
		q.removeAt(0)
	}
}

// Len returns the number of registered deadlines.
//
//air:hotpath
func (q *HeapQueue) Len() int { return len(q.entries) }

// Entries returns the registered deadlines in ascending (deadline, pid)
// order. The heap array is only partially ordered, so this sorts a copy —
// a cold-path operation used by verification tooling and tests.
func (q *HeapQueue) Entries() []Entry {
	out := make([]Entry, len(q.entries))
	copy(out, q.entries)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Clone deep-copies the queue: two slice copies, no per-entry allocation.
func (q *HeapQueue) Clone() DeadlineQueue {
	c := &HeapQueue{
		entries: make([]Entry, len(q.entries), cap(q.entries)),
		slots:   make([]int32, len(q.slots)),
	}
	copy(c.entries, q.entries)
	copy(c.slots, q.slots)
	return c
}

// removeAt removes the entry at heap index i, restoring heap order.
//
//air:hotpath
func (q *HeapQueue) removeAt(i int) {
	last := len(q.entries) - 1
	q.slots[q.entries[i].PID] = -1
	if i != last {
		q.entries[i] = q.entries[last]
		q.slots[q.entries[i].PID] = int32(i)
	}
	q.entries = q.entries[:last]
	if i != last {
		q.fix(i)
	}
}

// fix restores heap order for a changed entry at index i.
//
//air:hotpath
func (q *HeapQueue) fix(i int) {
	if !q.siftDown(i) {
		q.siftUp(i)
	}
}

//air:hotpath
func (q *HeapQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.entries[i], q.entries[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown reports whether the entry moved.
//
//air:hotpath
func (q *HeapQueue) siftDown(i int) bool {
	moved := false
	n := len(q.entries)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && less(q.entries[right], q.entries[left]) {
			least = right
		}
		if !less(q.entries[least], q.entries[i]) {
			break
		}
		q.swap(i, least)
		i = least
		moved = true
	}
	return moved
}

//air:hotpath
func (q *HeapQueue) swap(i, j int) {
	q.entries[i], q.entries[j] = q.entries[j], q.entries[i]
	q.slots[q.entries[i].PID] = int32(i)
	q.slots[q.entries[j].PID] = int32(j)
}
