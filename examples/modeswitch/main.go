// Modeswitch: mode-based partition schedules across mission phases. Three
// scheduling tables — "ascent", "science" and "safe" — are *synthesized*
// from per-phase timing requirements with the library's EDF-based PST
// generator, then the mission sequencer switches between them at MTF
// boundaries, with per-schedule restart actions applied to the payload
// partition.
//
//	go run ./examples/modeswitch
package main

import (
	"fmt"
	"log"

	"air"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Phase requirements: during ascent the platform partition dominates;
	// in science mode the payload gets the bulk; safe mode gives almost
	// everything to the platform and restarts the payload cold.
	phases := map[string][]air.Requirement{
		"ascent": {
			{Partition: "PLATFORM", Cycle: 100, Budget: 70},
			{Partition: "PAYLOAD", Cycle: 100, Budget: 10},
			{Partition: "SEQ", Cycle: 100, Budget: 10},
		},
		"science": {
			{Partition: "PLATFORM", Cycle: 100, Budget: 30},
			{Partition: "PAYLOAD", Cycle: 50, Budget: 25, ChangeAction: air.ActionWarmStart},
			{Partition: "SEQ", Cycle: 100, Budget: 10},
		},
		"safe": {
			{Partition: "PLATFORM", Cycle: 100, Budget: 80},
			{Partition: "PAYLOAD", Cycle: 100, Budget: 5, ChangeAction: air.ActionColdStart},
			{Partition: "SEQ", Cycle: 100, Budget: 10},
		},
	}
	sys := &air.System{Partitions: []air.PartitionName{"PLATFORM", "PAYLOAD", "SEQ"}}
	order := []string{"ascent", "science", "safe"} // schedule IDs 0, 1, 2
	for _, name := range order {
		sch, err := air.Synthesize(name, phases[name])
		if err != nil {
			return fmt.Errorf("synthesize %s: %w", name, err)
		}
		sys.Schedules = append(sys.Schedules, *sch)
		fmt.Printf("synthesized %-8s MTF=%d windows=%d\n", name, sch.MTF, len(sch.Windows))
	}
	if report := air.Verify(sys); !report.OK() {
		return fmt.Errorf("verification failed:\n%s", report)
	}

	mkWorker := func(label string, period, wcet air.Ticks) air.InitFunc {
		return func(sv *air.Services) {
			sv.CreateProcess(air.TaskSpec{
				Name: label, Period: period, Deadline: period,
				BasePriority: 1, WCET: wcet, Periodic: true,
			}, func(sv *air.Services) {
				n := 0
				for {
					sv.Compute(wcet)
					n++
					if n%5 == 0 {
						fmt.Printf("[t=%4d] %s completed activation %d (start #%d)\n",
							sv.GetTime(), label, n, sv.GetPartitionStatus().StartCount)
					}
					sv.PeriodicWait()
				}
			})
			sv.StartProcess(label)
			sv.SetPartitionMode(air.ModeNormal)
		}
	}

	// The mission sequencer runs on the SEQ system partition and steps the
	// mission through its phases.
	seqInit := func(sv *air.Services) {
		sv.CreateProcess(air.TaskSpec{
			Name: "sequencer", Period: 100, Deadline: 100,
			BasePriority: 1, WCET: 5, Periodic: true,
		}, func(sv *air.Services) {
			plan := map[air.Ticks]string{
				500:  "science", // science phase after 5 frames
				1200: "safe",    // anomaly: enter safe mode
			}
			for {
				sv.Compute(2)
				if phase, ok := plan[sv.GetTime()-(sv.GetTime()%100)]; ok {
					st := sv.GetModuleScheduleStatus()
					if st.CurrentName != phase && st.NextName != phase {
						rc := sv.SetModuleScheduleByName(phase)
						fmt.Printf("[t=%4d] SEQ requests phase %q: %s\n",
							sv.GetTime(), phase, rc)
					}
				}
				sv.PeriodicWait()
			}
		})
		sv.StartProcess("sequencer")
		sv.SetPartitionMode(air.ModeNormal)
	}

	m, err := air.NewModule(air.Config{
		System: sys,
		Partitions: []air.PartitionConfig{
			{Name: "PLATFORM", Init: mkWorker("platform_ctl", 100, 20)},
			// Period 100, WCET 4: fits even safe mode's 5-tick budget.
			{Name: "PAYLOAD", Init: mkWorker("instrument", 100, 4)},
			{Name: "SEQ", System: true, Init: seqInit},
		},
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		return err
	}
	if err := m.Run(2000); err != nil {
		return err
	}

	fmt.Println("\n--- schedule switches and restarts ---")
	for _, kind := range []air.EventKind{air.EvScheduleSwitch, air.EvPartitionRestart} {
		for _, e := range m.TraceKind(kind) {
			fmt.Println(e)
		}
	}
	st := m.ScheduleStatus()
	fmt.Printf("\nfinal schedule: %s (switched at t=%d), deadline misses: %d\n",
		st.CurrentName, st.LastSwitch, len(m.TraceKind(air.EvDeadlineMiss)))
	return nil
}
