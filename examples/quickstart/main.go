// Quickstart: the smallest complete AIR system — two partitions sharing a
// 100-tick major time frame, one periodic process each, and an interpartition
// sampling channel between them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"air"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Describe the system in the paper's formal model: partitions P and
	//    one partition scheduling table χ with windows ω.
	sys := &air.System{
		Partitions: []air.PartitionName{"CTRL", "TELEM"},
		Schedules: []air.Schedule{{
			Name: "flight", MTF: 100,
			Requirements: []air.Requirement{
				{Partition: "CTRL", Cycle: 100, Budget: 60},
				{Partition: "TELEM", Cycle: 100, Budget: 40},
			},
			Windows: []air.Window{
				{Partition: "CTRL", Offset: 0, Duration: 60},
				{Partition: "TELEM", Offset: 60, Duration: 40},
			},
		}},
	}
	// 2. Verify it offline — eqs. (21), (22), (23) of the paper.
	if report := air.Verify(sys); !report.OK() {
		return fmt.Errorf("model verification failed:\n%s", report)
	}

	// 3. Build the module: partition initialization code creates ports and
	//    processes through the APEX interface, then enters normal mode.
	m, err := air.NewModule(air.Config{
		System: sys,
		Sampling: []air.SamplingChannelConfig{{
			Name: "state", MaxMessage: 32, Refresh: 150,
			Source:       air.PortRef{Partition: "CTRL", Port: "state_out"},
			Destinations: []air.PortRef{{Partition: "TELEM", Port: "state_in"}},
		}},
		Partitions: []air.PartitionConfig{
			{Name: "CTRL", Init: func(sv *air.Services) {
				sv.CreateSamplingPort("state_out", air.Source)
				sv.CreateProcess(air.TaskSpec{
					Name: "control", Period: 100, Deadline: 100,
					BasePriority: 1, WCET: 40, Periodic: true,
				}, func(sv *air.Services) {
					cycle := 0
					for {
						sv.Compute(40) // the control law
						cycle++
						msg := fmt.Sprintf("cycle=%d t=%d", cycle, sv.GetTime())
						sv.WriteSamplingMessage("state_out", []byte(msg))
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("control")
				sv.SetPartitionMode(air.ModeNormal)
			}},
			{Name: "TELEM", Init: func(sv *air.Services) {
				sv.CreateSamplingPort("state_in", air.Destination)
				sv.CreateProcess(air.TaskSpec{
					Name: "downlink", Period: 100, Deadline: 100,
					BasePriority: 1, WCET: 20, Periodic: true,
				}, func(sv *air.Services) {
					for {
						sv.Compute(20)
						if data, validity, rc := sv.ReadSamplingMessage("state_in"); rc == air.NoError {
							fmt.Printf("[t=%4d] TELEM downlinks %q (%s)\n",
								sv.GetTime(), data, validity)
						}
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("downlink")
				sv.SetPartitionMode(air.ModeNormal)
			}},
		},
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()

	// 4. Run five major time frames.
	if err := m.Start(); err != nil {
		return err
	}
	if err := m.Run(5 * 100); err != nil {
		return err
	}
	fmt.Printf("done at t=%d with %d deadline misses\n",
		m.Now(), len(m.TraceKind(air.EvDeadlineMiss)))
	return nil
}
