// Satellite: the paper's Sect. 6 prototype rebuilt on the public API — four
// partitions (AOCS, OBDH, TTC, FDIR) over the Fig. 8 scheduling tables, with
// the attitude sampling channel and housekeeping queuing channel connecting
// them. Optional flags inject the faulty process and request a schedule
// switch mid-mission.
//
//	go run ./examples/satellite [-fault] [-switch] [-mtfs n]
package main

import (
	"flag"
	"fmt"
	"log"

	"air"
)

func main() {
	fault := flag.Bool("fault", false, "inject the deadline-violating process on P1")
	doSwitch := flag.Bool("switch", false, "request schedule chi2 after the second MTF")
	mtfs := flag.Int("mtfs", 5, "major time frames to run")
	flag.Parse()
	if err := run(*fault, *doSwitch, *mtfs); err != nil {
		log.Fatal(err)
	}
}

const mtf = 1300

func run(fault, doSwitch bool, mtfs int) error {
	sys := air.Fig8System()
	if report := air.Verify(sys); !report.OK() {
		return fmt.Errorf("verification failed:\n%s", report)
	}
	m, err := air.NewModule(air.Config{
		System: sys,
		Sampling: []air.SamplingChannelConfig{{
			Name: "attitude", MaxMessage: 64, Refresh: 1300,
			Source: air.PortRef{Partition: "P1", Port: "att_out"},
			Destinations: []air.PortRef{
				{Partition: "P2", Port: "att_in"},
				{Partition: "P4", Port: "att_in"},
			},
		}},
		Queuing: []air.QueuingChannelConfig{{
			Name: "housekeeping", MaxMessage: 128, Depth: 16,
			Source:      air.PortRef{Partition: "P2", Port: "hk_out"},
			Destination: air.PortRef{Partition: "P3", Port: "hk_in"},
		}},
		Partitions: []air.PartitionConfig{
			{Name: "P1", System: true, Init: aocsInit(fault),
				HMProcessTable: air.HMTable{
					air.ErrDeadlineMissed: air.HMRule{Action: air.ActionRestartProcess},
				}},
			{Name: "P2", Init: obdhInit},
			{Name: "P3", Init: ttcInit},
			{Name: "P4", Init: fdirInit},
		},
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		return err
	}

	for frame := 1; frame <= mtfs; frame++ {
		if doSwitch && frame == 3 {
			p1, err := m.Partition("P1")
			if err != nil {
				return err
			}
			rc := p1.KernelServices().SetModuleScheduleByName("chi2")
			fmt.Printf("[t=%5d] ground requests schedule chi2: %s\n", m.Now(), rc)
		}
		if err := m.Run(mtf); err != nil {
			return err
		}
		st := m.ScheduleStatus()
		fmt.Printf("[t=%5d] MTF %d complete, schedule=%s\n", m.Now(), frame, st.CurrentName)
	}

	fmt.Println("\n--- module trace ---")
	for _, e := range m.Trace() {
		fmt.Println(e)
	}
	fmt.Println("\n--- health monitor ---")
	for _, e := range m.Health().Events() {
		fmt.Println(e)
	}
	return nil
}

// aocsInit is the Attitude and Orbit Control Subsystem on P1.
func aocsInit(fault bool) air.InitFunc {
	return func(sv *air.Services) {
		sv.CreateSamplingPort("att_out", air.Source)
		sv.CreateProcess(air.TaskSpec{
			Name: "aocs_control", Period: 1300, Deadline: 650,
			BasePriority: 1, WCET: 150, Periodic: true,
		}, func(sv *air.Services) {
			angle := 0
			for {
				sv.Compute(120)
				angle = (angle + 7) % 3600
				sv.WriteSamplingMessage("att_out",
					[]byte(fmt.Sprintf("q:%04d", angle)))
				sv.PeriodicWait()
			}
		})
		sv.StartProcess("aocs_control")
		if fault {
			sv.CreateProcess(air.TaskSpec{
				Name: "faulty", Period: 1300, Deadline: 220,
				BasePriority: 8, WCET: 200, Periodic: true,
			}, func(sv *air.Services) {
				for {
					sv.Compute(1 << 30) // runaway: never completes
				}
			})
			sv.StartProcess("faulty")
		}
		sv.SetPartitionMode(air.ModeNormal)
	}
}

// obdhInit is Onboard Data Handling on P2.
func obdhInit(sv *air.Services) {
	sv.CreateSamplingPort("att_in", air.Destination)
	sv.CreateQueuingPort("hk_out", air.Source)
	sv.CreateProcess(air.TaskSpec{
		Name: "obdh_housekeeping", Period: 650, Deadline: 650,
		BasePriority: 2, WCET: 80, Periodic: true,
	}, func(sv *air.Services) {
		seq := 0
		for {
			sv.Compute(60)
			att, _, rc := sv.ReadSamplingMessage("att_in")
			frame := fmt.Sprintf("hk#%03d att=%s rc=%s", seq, att, rc)
			sv.SendQueuingMessage("hk_out", []byte(frame), 0)
			seq++
			sv.PeriodicWait()
		}
	})
	sv.StartProcess("obdh_housekeeping")
	sv.SetPartitionMode(air.ModeNormal)
}

// ttcInit is Telemetry, Tracking and Command on P3.
func ttcInit(sv *air.Services) {
	sv.CreateQueuingPort("hk_in", air.Destination)
	sv.CreateProcess(air.TaskSpec{
		Name: "ttc_downlink", Period: 650, Deadline: 650,
		BasePriority: 2, WCET: 80, Periodic: true,
	}, func(sv *air.Services) {
		for {
			sv.Compute(20)
			for {
				frame, rc := sv.ReceiveQueuingMessage("hk_in", 0)
				if rc != air.NoError {
					break
				}
				sv.Compute(5)
				fmt.Printf("[t=%5d] TTC downlink: %s\n", sv.GetTime(), frame)
			}
			sv.PeriodicWait()
		}
	})
	sv.StartProcess("ttc_downlink")
	sv.SetPartitionMode(air.ModeNormal)
}

// fdirInit is Fault Detection, Isolation and Recovery on P4.
func fdirInit(sv *air.Services) {
	sv.CreateSamplingPort("att_in", air.Destination)
	sv.CreateProcess(air.TaskSpec{
		Name: "fdir_monitor", Period: 1300, Deadline: 1300,
		BasePriority: 1, WCET: 90, Periodic: true,
	}, func(sv *air.Services) {
		for {
			sv.Compute(50)
			_, validity, rc := sv.ReadSamplingMessage("att_in")
			if rc != air.NoError || validity != air.Valid {
				fmt.Printf("[t=%5d] FDIR: attitude STALE\n", sv.GetTime())
			}
			sv.PeriodicWait()
		}
	})
	sv.StartProcess("fdir_monitor")
	sv.SetPartitionMode(air.ModeNormal)
}
