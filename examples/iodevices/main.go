// Iodevices: dedicated input/output addressing spaces (paper abstract,
// Sect. 2.1). A COMMS partition owns a memory-mapped UART (uplink commands
// in, telemetry out) and a read-only attitude sensor bank; a second
// partition shares the module but cannot reach either device — its probe
// faults and is contained by health monitoring.
//
//	go run ./examples/iodevices
package main

import (
	"fmt"
	"log"

	"air"
)

const (
	uartBase   = air.VirtAddr(0x0400_0000)
	sensorBase = air.VirtAddr(0x0500_0000)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := &air.System{
		Partitions: []air.PartitionName{"COMMS", "OTHER"},
		Schedules: []air.Schedule{{
			Name: "main", MTF: 100,
			Requirements: []air.Requirement{
				{Partition: "COMMS", Cycle: 100, Budget: 60},
				{Partition: "OTHER", Cycle: 100, Budget: 40},
			},
			Windows: []air.Window{
				{Partition: "COMMS", Offset: 0, Duration: 60},
				{Partition: "OTHER", Offset: 60, Duration: 40},
			},
		}},
	}
	if report := air.Verify(sys); !report.OK() {
		return fmt.Errorf("verify:\n%s", report)
	}

	uart := air.NewUART()
	uart.Feed([]byte("CMD:PING\n")) // ground uplink waiting at boot
	sensor := air.NewSensor(4, 2400, 3)

	m, err := air.NewModule(air.Config{
		System: sys,
		Partitions: []air.PartitionConfig{
			{Name: "COMMS",
				Devices: []air.DeviceMapping{
					{Base: uartBase, Size: 64,
						AppPerms: air.PermRead | air.PermWrite,
						POSPerms: air.PermRead | air.PermWrite, Device: uart},
					{Base: sensorBase, Size: 8,
						AppPerms: air.PermRead, POSPerms: air.PermRead, Device: sensor},
				},
				Init: func(sv *air.Services) {
					sv.CreateProcess(air.TaskSpec{
						Name: "comms", Period: 100, Deadline: 100,
						BasePriority: 1, WCET: 30, Periodic: true,
					}, func(sv *air.Services) {
						for {
							sv.Compute(10)
							// Drain any uplinked bytes.
							var cmd []byte
							status := make([]byte, 1)
							for {
								sv.MemRead(uartBase+2, status)
								if status[0] == 0 {
									break
								}
								b := make([]byte, 1)
								sv.MemRead(uartBase+1, b)
								cmd = append(cmd, b[0])
							}
							if len(cmd) > 0 {
								fmt.Printf("[t=%4d] COMMS received uplink %q\n",
									sv.GetTime(), cmd)
							}
							// Read the attitude registers and downlink them.
							regs := make([]byte, 8)
							sv.MemRead(sensorBase, regs)
							tm := fmt.Sprintf("TM t=%d att=%d,%d,%d,%d\n", sv.GetTime(),
								reg(regs, 0), reg(regs, 1), reg(regs, 2), reg(regs, 3))
							sv.MemWrite(uartBase, []byte(tm))
							sv.PeriodicWait()
						}
					})
					sv.StartProcess("comms")
					sv.SetPartitionMode(air.ModeNormal)
				}},
			{Name: "OTHER",
				HMPartitionTable: air.HMTable{
					air.ErrMemoryViolation: air.HMRule{Action: air.ActionIgnore},
				},
				Init: func(sv *air.Services) {
					sv.CreateProcess(air.TaskSpec{
						Name: "prober", Period: 100, Deadline: 100,
						BasePriority: 1, WCET: 5, Periodic: true,
					}, func(sv *air.Services) {
						probed := false
						for {
							sv.Compute(5)
							if !probed {
								rc := sv.MemRead(uartBase, make([]byte, 1))
								fmt.Printf("[t=%4d] OTHER probing COMMS UART: %s (contained)\n",
									sv.GetTime(), rc)
								probed = true
							}
							sv.PeriodicWait()
						}
					})
					sv.StartProcess("prober")
					sv.SetPartitionMode(air.ModeNormal)
				}},
		},
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		return err
	}
	// Sample the sensor each frame, as a hardware clocked ADC would.
	for frame := 0; frame < 4; frame++ {
		sensor.Sample()
		if err := m.Run(100); err != nil {
			return err
		}
	}

	fmt.Printf("\n--- ground view: UART downlink ---\n%s", uart.Transmitted())
	fmt.Printf("memory violations contained: %d (all from OTHER)\n",
		m.Health().Count(air.ErrMemoryViolation))
	if m.Health().Count(air.ErrMemoryViolation) == 0 {
		return fmt.Errorf("probe was not detected")
	}
	return nil
}

// reg decodes little-endian 16-bit register i from a raw read.
func reg(raw []byte, i int) uint16 {
	return uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
}
