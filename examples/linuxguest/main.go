// Linuxguest: coexistence of real-time and generic non-real-time partition
// operating systems (paper Sect. 2.5). An RTOS partition runs a hard
// periodic control loop; a "Linux" partition runs a round-robin kernel with
// several best-effort services (a scripting interpreter, a file indexer, a
// telemetry compressor) sharing the window fairly. The guest's attempt to
// disable the system clock is denied by the paravirtualization layer, and
// the RT partition's deadlines are provably unaffected by anything the
// non-RT guest does.
//
//	go run ./examples/linuxguest
package main

import (
	"fmt"
	"log"

	"air"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := &air.System{
		Partitions: []air.PartitionName{"RT", "LINUX"},
		Schedules: []air.Schedule{{
			Name: "shared", MTF: 100,
			Requirements: []air.Requirement{
				{Partition: "RT", Cycle: 100, Budget: 40},
				// d = 0: no strict time requirements (Sect. 3.1); it simply
				// receives whatever windows the integrator allocates.
				{Partition: "LINUX", Cycle: 100, Budget: 0},
			},
			Windows: []air.Window{
				{Partition: "RT", Offset: 0, Duration: 40},
				{Partition: "LINUX", Offset: 40, Duration: 60},
			},
		}},
	}
	if report := air.Verify(sys); !report.OK() {
		return fmt.Errorf("verify:\n%s", report)
	}

	shares := map[string]int{}
	m, err := air.NewModule(air.Config{
		System: sys,
		Partitions: []air.PartitionConfig{
			{Name: "RT", Init: func(sv *air.Services) {
				sv.CreateProcess(air.TaskSpec{
					Name: "control", Period: 100, Deadline: 50,
					BasePriority: 1, WCET: 35, Periodic: true,
				}, func(sv *air.Services) {
					n := 0
					for {
						sv.Compute(35)
						n++
						if n%5 == 0 {
							fmt.Printf("[t=%4d] RT control: activation %d on time\n",
								sv.GetTime(), n)
						}
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("control")
				sv.SetPartitionMode(air.ModeNormal)
			}},
			{Name: "LINUX", Policy: air.PolicyRoundRobin, Init: func(sv *air.Services) {
				// The guest kernel probes for clock control at boot — the
				// paravirtualized wrapper denies it (Sect. 2.5).
				if err := sv.DisableClockInterrupts(); err != nil {
					fmt.Printf("[boot ] LINUX: clock takeover denied: %v\n", err)
				}
				for _, svc := range []string{"interpreter", "indexer", "compressor"} {
					name := svc
					sv.CreateProcess(air.TaskSpec{
						Name: name, Deadline: air.Infinity, BasePriority: 5, WCET: 1,
					}, func(sv *air.Services) {
						for {
							sv.Compute(1) // best-effort churn
							shares[name]++
						}
					})
					sv.StartProcess(name)
				}
				sv.SetPartitionMode(air.ModeNormal)
			}},
		},
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		return err
	}
	if err := m.Run(1000); err != nil {
		return err
	}

	fmt.Println("\nnon-RT guest fair shares over 10 MTFs (600 LINUX ticks):")
	for _, svc := range []string{"interpreter", "indexer", "compressor"} {
		fmt.Printf("  %-12s %4d ticks\n", svc, shares[svc])
	}
	misses := m.TraceKind(air.EvDeadlineMiss)
	fmt.Printf("\nRT deadline misses: %d (temporal partitioning holds)\n", len(misses))
	if len(misses) != 0 {
		return fmt.Errorf("the non-RT guest disturbed the RT partition")
	}
	return nil
}
