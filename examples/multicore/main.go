// Multicore: the paper's Sect. 8 future-work item (iv) — "parallelism
// between partition time windows on a multicore platform". Two processor
// cores run independent partition schedules: core 0 hosts the platform
// partitions (AOCS + FDIR), core 1 the payload partitions (CAMERA + DSP).
// A cross-core queuing channel streams image frames from the camera to the
// platform downlink, and the combined periodic load exceeds what a single
// core could supply.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"air"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// coreSystem builds one core's schedule: the named partitions split a
// 100-tick MTF evenly.
func coreSystem(parts ...air.PartitionName) *air.System {
	n := air.Ticks(len(parts))
	slot := 100 / n
	s := air.Schedule{Name: "main", MTF: 100}
	for i, p := range parts {
		s.Requirements = append(s.Requirements, air.Requirement{
			Partition: p, Cycle: 100, Budget: slot,
		})
		s.Windows = append(s.Windows, air.Window{
			Partition: p, Offset: air.Ticks(i) * slot, Duration: slot,
		})
	}
	return &air.System{Partitions: parts, Schedules: []air.Schedule{s}}
}

func worker(label string, wcet air.Ticks, onDone func(sv *air.Services)) air.InitFunc {
	return func(sv *air.Services) {
		sv.CreateProcess(air.TaskSpec{
			Name: label, Period: 100, Deadline: 100,
			BasePriority: 1, WCET: wcet, Periodic: true,
		}, func(sv *air.Services) {
			for {
				sv.Compute(wcet)
				if onDone != nil {
					onDone(sv)
				}
				sv.PeriodicWait()
			}
		})
		sv.StartProcess(label)
		sv.SetPartitionMode(air.ModeNormal)
	}
}

func run() error {
	frames := 0
	m, err := air.NewMulticoreModule(air.MulticoreConfig{
		Queuing: []air.QueuingChannelConfig{{
			Name: "frames", MaxMessage: 64, Depth: 8,
			Source:      air.PortRef{Partition: "CAMERA", Port: "img_out"},
			Destination: air.PortRef{Partition: "AOCS", Port: "img_in"},
		}},
		Cores: []air.Config{
			{ // core 0: platform
				System: coreSystem("AOCS", "FDIR"),
				Partitions: []air.PartitionConfig{
					{Name: "AOCS", Init: func(sv *air.Services) {
						sv.CreateQueuingPort("img_in", air.Destination)
						sv.CreateProcess(air.TaskSpec{
							Name: "platform", Period: 100, Deadline: 100,
							BasePriority: 1, WCET: 40, Periodic: true,
						}, func(sv *air.Services) {
							for {
								sv.Compute(35)
								for {
									data, rc := sv.ReceiveQueuingMessage("img_in", 0)
									if rc != air.NoError {
										break
									}
									frames++
									if frames%5 == 0 {
										fmt.Printf("[t=%4d] AOCS downlinked %s (total %d)\n",
											sv.GetTime(), data, frames)
									}
								}
								sv.PeriodicWait()
							}
						})
						sv.StartProcess("platform")
						sv.SetPartitionMode(air.ModeNormal)
					}},
					{Name: "FDIR", Init: worker("fdir", 40, nil)},
				},
			},
			{ // core 1: payload
				System: coreSystem("CAMERA", "DSP"),
				Partitions: []air.PartitionConfig{
					{Name: "CAMERA", Init: func(sv *air.Services) {
						sv.CreateQueuingPort("img_out", air.Source)
						sv.CreateProcess(air.TaskSpec{
							Name: "imager", Period: 100, Deadline: 100,
							BasePriority: 1, WCET: 45, Periodic: true,
						}, func(sv *air.Services) {
							shot := 0
							for {
								sv.Compute(45) // exposure + readout
								shot++
								sv.SendQueuingMessage("img_out",
									[]byte(fmt.Sprintf("frame#%03d", shot)), 0)
								sv.PeriodicWait()
							}
						})
						sv.StartProcess("imager")
						sv.SetPartitionMode(air.ModeNormal)
					}},
					{Name: "DSP", Init: worker("dsp", 45, nil)},
				},
			},
		},
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		return err
	}
	if err := m.Run(1000); err != nil {
		return err
	}

	// Total periodic demand: 40+40+45+45 = 170 ticks per 100-tick frame —
	// 170% of one core. Zero misses proves the windows really overlap.
	misses := m.TraceKind(air.EvDeadlineMiss)
	fmt.Printf("\n10 global MTFs: %d frames downlinked across cores, %d deadline misses\n",
		frames, len(misses))
	fmt.Printf("aggregate periodic demand: 170%% of one core — schedulable only with parallel windows\n")
	if len(misses) != 0 || frames == 0 {
		return fmt.Errorf("multicore demonstration failed")
	}
	return nil
}
