// Deadlinemon: process deadline violation monitoring end to end (paper
// Sect. 5) — a partition hosts a well-behaved control process and a faulty
// process whose deadline expires while the partition is inactive. The
// application error handler decides recovery: after three misses it stops
// the faulty process and raises a flag the control process downlinks.
//
//	go run ./examples/deadlinemon
package main

import (
	"fmt"
	"log"

	"air"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := &air.System{
		Partitions: []air.PartitionName{"APP", "OTHER"},
		Schedules: []air.Schedule{{
			Name: "main", MTF: 100,
			Requirements: []air.Requirement{
				{Partition: "APP", Cycle: 100, Budget: 50},
				{Partition: "OTHER", Cycle: 100, Budget: 50},
			},
			Windows: []air.Window{
				{Partition: "APP", Offset: 0, Duration: 50},
				{Partition: "OTHER", Offset: 50, Duration: 50},
			},
		}},
	}
	if report := air.Verify(sys); !report.OK() {
		return fmt.Errorf("verify:\n%s", report)
	}

	misses := 0
	m, err := air.NewModule(air.Config{
		System: sys,
		Partitions: []air.PartitionConfig{
			{Name: "APP", Init: func(sv *air.Services) {
				// The error handler is the recovery policy (Sect. 5): log
				// the first misses, stop the process on the third.
				sv.CreateErrorHandler(func(hsv *air.Services, ev air.HMEvent) {
					misses++
					fmt.Printf("[t=%4d] handler: %s by %s (miss %d)\n",
						ev.Time, ev.Code, ev.Process, misses)
					// Sect. 5 recovery options: reinitialize the faulty
					// process from its entry point for the first misses
					// (which re-arms its deadline), stop it for good on
					// the third.
					hsv.StopProcess(ev.Process)
					if misses < 3 {
						hsv.StartProcess(ev.Process)
						return
					}
					fmt.Printf("[t=%4d] handler: stopping %s for good\n",
						ev.Time, ev.Process)
					if st, rc := hsv.GetProcessStatus(ev.Process); rc == air.NoError {
						fmt.Printf("          process now %s\n", st.State)
					}
				})
				// Well-behaved control loop, higher priority.
				sv.CreateProcess(air.TaskSpec{
					Name: "control", Period: 100, Deadline: 100,
					BasePriority: 1, WCET: 20, Periodic: true,
				}, func(sv *air.Services) {
					for {
						sv.Compute(20)
						sv.PeriodicWait()
					}
				})
				// The faulty process: capacity 60 expires during the OTHER
				// window; it never completes an activation.
				sv.CreateProcess(air.TaskSpec{
					Name: "faulty", Period: 100, Deadline: 60,
					BasePriority: 5, WCET: 30, Periodic: true,
				}, func(sv *air.Services) {
					for {
						sv.Compute(1 << 30)
					}
				})
				sv.StartProcess("control")
				sv.StartProcess("faulty")
				sv.SetPartitionMode(air.ModeNormal)
			}},
			{Name: "OTHER"},
		},
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		return err
	}

	// The faulty process's capacity (60) expires during the OTHER window,
	// so each miss is detected at the next APP dispatch — at t = 100, 200,
	// 300 — and the handler's restart re-arms the next deadline until it
	// stops the process for good on the third miss.
	if err := m.Run(8 * 100); err != nil {
		return err
	}

	fmt.Println("\n--- deadline violations detected ---")
	for _, e := range m.TraceKind(air.EvDeadlineMiss) {
		fmt.Println(e)
	}
	fmt.Println("\n--- eq. (24) violation set right now (registered deadlines only) ---")
	pt, _ := m.Partition("APP")
	fmt.Printf("V(t=%d) over pending deadlines: %d entries, %d still registered\n",
		m.Now(), len(pt.PAL().ViolationSet(m.Now())), pt.PAL().Pending())
	if misses < 3 {
		return fmt.Errorf("expected at least 3 misses, got %d", misses)
	}
	return nil
}
