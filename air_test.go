package air

import (
	"strings"
	"testing"

	"air/internal/config"
)

// TestFacadeQuickstart exercises the public API end to end exactly as the
// package documentation advertises.
func TestFacadeQuickstart(t *testing.T) {
	sys := Fig8System()
	if r := Verify(sys); !r.OK() {
		t.Fatalf("Fig8 system must verify: %s", r)
	}
	var activations int
	m, err := NewModule(Config{
		System: sys,
		Partitions: []PartitionConfig{
			{Name: "P1", Init: func(sv *Services) {
				sv.CreateProcess(TaskSpec{
					Name: "ctl", Period: 1300, Deadline: 1300,
					BasePriority: 1, WCET: 100, Periodic: true,
				}, func(sv *Services) {
					for {
						sv.Compute(100)
						activations++
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("ctl")
				sv.SetPartitionMode(ModeNormal)
			}},
			{Name: "P2"}, {Name: "P3"}, {Name: "P4"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5 * 1300); err != nil {
		t.Fatal(err)
	}
	if activations != 5 {
		t.Errorf("activations = %d, want 5", activations)
	}
	if misses := m.TraceKind(EvDeadlineMiss); len(misses) != 0 {
		t.Errorf("misses: %v", misses)
	}
}

func TestFacadeSynthesisAndAnalysis(t *testing.T) {
	sch, err := Synthesize("auto", []Requirement{
		{Partition: "A", Cycle: 100, Budget: 40},
		{Partition: "B", Cycle: 200, Budget: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{
		Partitions: []PartitionName{"A", "B"},
		Schedules:  []Schedule{*sch},
	}
	if r := Verify(sys); !r.OK() {
		t.Fatalf("synthesized schedule fails: %s", r)
	}
	results, err := AnalyzeSystem(sys, []TaskSet{
		{Partition: "A", Tasks: []TaskSpec{
			{Name: "t", Period: 200, Deadline: 200, BasePriority: 1, WCET: 30, Periodic: true},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Schedulable() {
		t.Errorf("analysis = %+v", results)
	}
}

func TestFacadeNotationAndGantt(t *testing.T) {
	sys := Fig8System()
	if n := Notation(sys); len(n) == 0 || n[0] != 'P' {
		t.Errorf("Notation = %q", n)
	}
	if g := RenderGantt(&sys.Schedules[0], 40); len(g) == 0 {
		t.Error("RenderGantt empty")
	}
}

func TestFacadeSimulateAndPriorities(t *testing.T) {
	sys := Fig8System()
	ts := TaskSet{Partition: "P4", Tasks: []TaskSpec{
		{Name: "b", Period: 1300, Deadline: 1300, BasePriority: 9, WCET: 100, Periodic: true},
		{Name: "a", Period: 650, Deadline: 650, BasePriority: 1, WCET: 50, Periodic: true},
	}}
	rm := AssignRateMonotonic(ts)
	if rm.Tasks[0].Name != "a" || rm.Tasks[0].BasePriority != 1 {
		t.Errorf("RM order = %+v", rm.Tasks)
	}
	dm := AssignDeadlineMonotonic(ts)
	if dm.Tasks[0].Name != "a" {
		t.Errorf("DM order = %+v", dm.Tasks)
	}
	res, err := SimulateTaskSet(&sys.Schedules[0], rm, 0)
	if err != nil || !res.OK() {
		t.Errorf("simulate = %+v, %v", res, err)
	}
}

func TestFacadeIntegrationReport(t *testing.T) {
	// Emit the built-in configuration through the config layer and render
	// the integration report through the facade.
	dir := t.TempDir()
	path := dir + "/cfg.json"
	if err := exerciseConfigRoundTrip(path); err != nil {
		t.Fatal(err)
	}
	doc, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteIntegrationReport(&b, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# Integration report") {
		t.Error("report header missing")
	}
}

// exerciseConfigRoundTrip writes the Fig. 8 configuration to disk via the
// config package (through the facade-visible surface).
func exerciseConfigRoundTrip(path string) error {
	doc := config.Fig8Module()
	return doc.Save(path)
}

func TestFacadeRunCampaign(t *testing.T) {
	res, err := RunCampaign(CampaignSpec{
		Runs: 3, Workers: 2, Seed: 13, MTFs: 3,
		Matrix: []CampaignScenario{{
			Name: "overrun+flood",
			Faults: []CampaignFaultRange{
				{Kind: FaultDeadlineOverrun},
				{Kind: FaultIPCFlood, Magnitude: CampaignRange{Min: 8, Max: 32}},
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Runs != 3 || res.Aggregate.Degraded != 0 {
		t.Fatalf("aggregate = %+v", res.Aggregate)
	}
	if res.Aggregate.HMByFaultKind[FaultDeadlineOverrun.String()] == 0 {
		t.Errorf("no overrun HM events: %v", res.Aggregate.HMByFaultKind)
	}
	var b strings.Builder
	if err := WriteCampaignReport(&b, res, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# Fault-injection campaign report") {
		t.Error("campaign report header missing")
	}
}
