package air

// Benchmark harness regenerating the paper's quantitative and efficiency
// claims (see DESIGN.md per-experiment index and EXPERIMENTS.md for the
// recorded results):
//
//	F1  BenchmarkPartitionScheduler*   — Algorithm 1 cost: best case (two
//	    computations) vs preemption point vs effective schedule switch.
//	F2  BenchmarkDispatcher*           — Algorithm 2 cost: same-partition
//	    fast path vs partition context switch.
//	F3  BenchmarkDeadlineEarliest*     — O(1) earliest-deadline retrieval
//	    (list) vs O(log n) leftmost walk (tree), across queue sizes.
//	F4  BenchmarkDeadlineRegister*,    — Sect. 5.3 ablation: list O(n)
//	    BenchmarkTickAnnounce*           register vs tree O(log n); ISR-side
//	    tick announce cost on both structures.
//	F6  BenchmarkSamplingPort*,        — interpartition communication:
//	    BenchmarkQueuingPort*,           local memory-to-memory vs simulated
//	    BenchmarkMMUCopy                 bus, and the PMK-mediated copy.
//	F7  BenchmarkMMUTranslate*         — spatial partitioning: 3-level table
//	    walk, hit and fault paths.
//	F8  BenchmarkPSTSynthesis,         — offline tooling: EDF-based PST
//	    BenchmarkSchedulability,         generation, two-level analysis and
//	    BenchmarkModelVerify             formal model verification.
//	E*  BenchmarkModuleTick*           — full module cost per tick for the
//	    Sect. 6 prototype, nominal and with the injected fault.

import (
	"fmt"
	"testing"

	"air/internal/archive"
	"air/internal/core"
	"air/internal/ipc"
	"air/internal/mmu"
	"air/internal/model"
	"air/internal/multicore"
	"air/internal/pal"
	"air/internal/pmk"
	"air/internal/pos"
	"air/internal/sched"
	"air/internal/tick"
	"air/internal/timeline"
	"air/internal/workload"
)

// --- F1: Partition Scheduler (Algorithm 1) ----------------------------------

// newScheduler builds a scheduler over schedules with the given number of
// one-tick windows per MTF.
func newBenchScheduler(b *testing.B, mtf tick.Ticks, windows []model.Window, reqs []model.Requirement) *pmk.Scheduler {
	b.Helper()
	sys := &model.System{
		Partitions: []model.PartitionName{"A", "B"},
		Schedules: []model.Schedule{
			{Name: "s0", MTF: mtf, Requirements: reqs, Windows: windows},
			{Name: "s1", MTF: mtf, Requirements: reqs, Windows: windows},
		},
	}
	var compiled []*pmk.CompiledSchedule
	for i := range sys.Schedules {
		cs, err := pmk.Compile(sys, &sys.Schedules[i])
		if err != nil {
			b.Fatal(err)
		}
		compiled = append(compiled, cs)
	}
	s, err := pmk.NewScheduler(compiled)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Start(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkPartitionSchedulerBestCase measures Algorithm 1's frequent path:
// the preemption-point test fails and only two computations are performed
// (one window per 2^20-tick MTF → points are negligible).
func BenchmarkPartitionSchedulerBestCase(b *testing.B) {
	const mtf = 1 << 20
	s := newBenchScheduler(b, mtf,
		[]model.Window{{Partition: "A", Offset: 0, Duration: mtf}},
		[]model.Requirement{
			{Partition: "A", Cycle: mtf, Budget: mtf},
			{Partition: "B", Cycle: mtf, Budget: 0},
		})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkPartitionSchedulerPreemptionPoint measures the heir-selection
// path: every tick is a partition preemption point (two 1-tick windows).
func BenchmarkPartitionSchedulerPreemptionPoint(b *testing.B) {
	s := newBenchScheduler(b, 2,
		[]model.Window{
			{Partition: "A", Offset: 0, Duration: 1},
			{Partition: "B", Offset: 1, Duration: 1},
		},
		[]model.Requirement{
			{Partition: "A", Cycle: 2, Budget: 1},
			{Partition: "B", Cycle: 2, Budget: 1},
		})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkPartitionSchedulerScheduleSwitch measures the rare worst path:
// an effective schedule switch at every MTF boundary (MTF = 2, a pending
// switch re-armed each frame).
func BenchmarkPartitionSchedulerScheduleSwitch(b *testing.B) {
	s := newBenchScheduler(b, 2,
		[]model.Window{
			{Partition: "A", Offset: 0, Duration: 1},
			{Partition: "B", Offset: 1, Duration: 1},
		},
		[]model.Requirement{
			{Partition: "A", Cycle: 2, Budget: 1},
			{Partition: "B", Cycle: 2, Budget: 1},
		})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RequestSwitch(model.ScheduleID(i % 2)); err != nil {
			b.Fatal(err)
		}
		s.Tick()
	}
}

// BenchmarkPartitionSchedulerFig8 measures the amortized per-tick cost over
// the paper's actual prototype tables (7 points per 1300 ticks).
func BenchmarkPartitionSchedulerFig8(b *testing.B) {
	sys := model.Fig8System()
	var compiled []*pmk.CompiledSchedule
	for i := range sys.Schedules {
		cs, err := pmk.Compile(sys, &sys.Schedules[i])
		if err != nil {
			b.Fatal(err)
		}
		compiled = append(compiled, cs)
	}
	s, err := pmk.NewScheduler(compiled)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// --- F2: Partition Dispatcher (Algorithm 2) ----------------------------------

// BenchmarkDispatcherSamePartition measures the Algorithm 2 line-1 fast
// path (heir == active → elapsedTicks = 1).
func BenchmarkDispatcherSamePartition(b *testing.B) {
	const mtf = 1 << 20
	s := newBenchScheduler(b, mtf,
		[]model.Window{{Partition: "A", Offset: 0, Duration: mtf}},
		[]model.Requirement{
			{Partition: "A", Cycle: mtf, Budget: mtf},
			{Partition: "B", Cycle: mtf, Budget: 0},
		})
	d := pmk.NewDispatcher(s, pmk.Hooks{})
	heir := s.Heir()
	d.Dispatch(heir, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Dispatch(heir, tick.Ticks(i))
	}
}

// BenchmarkDispatcherContextSwitch measures the full context-switch path:
// save, elapsed-tick computation, restore, pending-action check.
func BenchmarkDispatcherContextSwitch(b *testing.B) {
	s := newBenchScheduler(b, 2,
		[]model.Window{
			{Partition: "A", Offset: 0, Duration: 1},
			{Partition: "B", Offset: 1, Duration: 1},
		},
		[]model.Requirement{
			{Partition: "A", Cycle: 2, Budget: 1},
			{Partition: "B", Cycle: 2, Budget: 1},
		})
	d := pmk.NewDispatcher(s, pmk.Hooks{
		SaveContext:                 func(model.PartitionName) {},
		RestoreContext:              func(model.PartitionName) {},
		PendingScheduleChangeAction: func(model.PartitionName) {},
	})
	a := pmk.Heir{Partition: "A"}
	bb := pmk.Heir{Partition: "B"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heir := a
		if i%2 == 1 {
			heir = bb
		}
		d.Dispatch(heir, tick.Ticks(i))
	}
}

// --- F3/F4: deadline queue ablation (Sect. 5.3) -------------------------------

var queueSizes = []int{4, 16, 64, 256, 1024}

func fillQueue(q pal.DeadlineQueue, n int) {
	for i := 0; i < n; i++ {
		// Deterministic pseudo-random deadlines.
		q.Register(pal.Entry{
			PID:      pos.ProcessID(i + 1),
			Deadline: tick.Ticks((i*2654435761 + 12345) % 1_000_000),
		})
	}
}

func benchEarliest(b *testing.B, mk func() pal.DeadlineQueue) {
	for _, n := range queueSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := mk()
			fillQueue(q, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := q.Earliest(); !ok {
					b.Fatal("empty queue")
				}
			}
		})
	}
}

// BenchmarkDeadlineEarliestList: the paper's O(1) claim — flat across n.
func BenchmarkDeadlineEarliestList(b *testing.B) {
	benchEarliest(b, func() pal.DeadlineQueue { return pal.NewListQueue() })
}

// BenchmarkDeadlineEarliestTree: the alternative's O(log n) leftmost walk.
func BenchmarkDeadlineEarliestTree(b *testing.B) {
	benchEarliest(b, func() pal.DeadlineQueue { return pal.NewTreeQueue() })
}

func benchRegister(b *testing.B, mk func() pal.DeadlineQueue) {
	for _, n := range queueSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := mk()
			fillQueue(q, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Update a rotating process with a moving deadline: the
				// REPLENISH-style register/update path.
				q.Register(pal.Entry{
					PID:      pos.ProcessID(i%n + 1),
					Deadline: tick.Ticks((i * 48271) % 1_000_000),
				})
			}
		})
	}
}

// BenchmarkDeadlineRegisterList: O(n) ordered insertion.
func BenchmarkDeadlineRegisterList(b *testing.B) {
	benchRegister(b, func() pal.DeadlineQueue { return pal.NewListQueue() })
}

// BenchmarkDeadlineRegisterTree: O(log n) insertion — the tree's win side.
func BenchmarkDeadlineRegisterTree(b *testing.B) {
	benchRegister(b, func() pal.DeadlineQueue { return pal.NewTreeQueue() })
}

func benchTickAnnounce(b *testing.B, useTree bool) {
	for _, n := range queueSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var now tick.Ticks
			nowFn := func() tick.Ticks { return now }
			var q pal.DeadlineQueue = pal.NewListQueue()
			if useTree {
				q = pal.NewTreeQueue()
			}
			p := pal.New(pal.Config{Partition: "P", Queue: q, Now: nowFn})
			k := pos.NewKernel(pos.Options{Partition: "P", Now: nowFn, Observer: p})
			p.Bind(k)
			fillQueue(q, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++ // deadlines are far in the future: no violations
				p.TickAnnounce(1)
			}
		})
	}
}

// BenchmarkTickAnnounceList: Algorithm 3 cost inside the clock tick path,
// list-backed — the configuration the paper ships.
func BenchmarkTickAnnounceList(b *testing.B) { benchTickAnnounce(b, false) }

// BenchmarkTickAnnounceTree: same with the tree queue.
func BenchmarkTickAnnounceTree(b *testing.B) { benchTickAnnounce(b, true) }

// BenchmarkDeadlineDetectAndRemove measures the violation path: detect the
// earliest expired deadline, report (no HM attached) and remove — O(1) on
// the list per the paper's argument.
func BenchmarkDeadlineDetectAndRemove(b *testing.B) {
	q := pal.NewListQueue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fillQueue(q, 64)
		b.StartTimer()
		// One expired entry at the head.
		q.Register(pal.Entry{PID: 999, Deadline: 0})
		if e, ok := q.Earliest(); !ok || e.PID != 999 {
			b.Fatal("head wrong")
		}
		q.RemoveEarliest()
		b.StopTimer()
		for _, e := range q.Entries() {
			q.Unregister(e.PID)
		}
		b.StartTimer()
	}
}

// --- F6: interpartition communication ----------------------------------------

func benchSampling(b *testing.B, latency tick.Ticks, size int) {
	r := ipc.NewRouter()
	ch, err := r.AddSampling(ipc.SamplingConfig{
		Name: "bench", MaxMessage: size, Refresh: 0, Latency: latency,
		Source:       ipc.PortRef{Partition: "A", Port: "o"},
		Destinations: []ipc.PortRef{{Partition: "B", Port: "i"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := tick.Ticks(i)
		if err := ch.Write("A", payload, now); err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Read("B", now+latency); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplingPortLocal: memory-to-memory write+read, 64-byte message.
func BenchmarkSamplingPortLocal(b *testing.B) { benchSampling(b, 0, 64) }

// BenchmarkSamplingPortLocal1K: 1 KiB message.
func BenchmarkSamplingPortLocal1K(b *testing.B) { benchSampling(b, 0, 1024) }

// BenchmarkSamplingPortRemote: via the simulated bus (latency accounting).
func BenchmarkSamplingPortRemote(b *testing.B) { benchSampling(b, 25, 64) }

func benchQueuing(b *testing.B, latency tick.Ticks) {
	r := ipc.NewRouter()
	ch, err := r.AddQueuing(ipc.QueuingConfig{
		Name: "bench", MaxMessage: 64, Depth: 16, Latency: latency,
		Source:      ipc.PortRef{Partition: "A", Port: "o"},
		Destination: ipc.PortRef{Partition: "B", Port: "i"},
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := tick.Ticks(i)
		if err := ch.Send("A", payload, now); err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Receive("B", now+latency); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueuingPortLocal: send+receive on a local queuing channel.
func BenchmarkQueuingPortLocal(b *testing.B) { benchQueuing(b, 0) }

// BenchmarkQueuingPortRemote: send+receive through the simulated bus.
func BenchmarkQueuingPortRemote(b *testing.B) { benchQueuing(b, 25) }

// BenchmarkMMUCopy: the PMK-mediated interpartition memory-to-memory copy
// with both sides' spatial checks (Sect. 2.1).
func BenchmarkMMUCopy(b *testing.B) {
	m := mmu.New(1 << 20)
	for _, p := range []model.PartitionName{"A", "B"} {
		if err := m.MapSpace(mmu.SpaceSpec{Partition: p, Descriptors: []mmu.Descriptor{
			{Section: mmu.SectionData, Base: 0, Size: 16 * mmu.PageSize,
				AppPerms: mmu.Read | mmu.Write, POSPerms: mmu.Read | mmu.Write},
		}}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Copy("A", 0x100, mmu.PrivPOS, "B", 0x100, mmu.PrivPOS, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F7: spatial partitioning --------------------------------------------------

// BenchmarkMMUTranslateWalk: the 3-level page table walk with permission
// check. Consecutive accesses alternate between two pages that collide in
// the same direct-mapped TLB slot, so every access misses and walks.
func BenchmarkMMUTranslateWalk(b *testing.B) {
	m := mmu.New(1 << 20)
	if err := m.MapSpace(mmu.SpaceSpec{Partition: "A", Descriptors: []mmu.Descriptor{
		{Section: mmu.SectionData, Base: 0, Size: 64 * mmu.PageSize,
			AppPerms: mmu.Read | mmu.Write, POSPerms: mmu.Read | mmu.Write},
	}}); err != nil {
		b.Fatal(err)
	}
	if err := m.SetContext("A"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pages 0 and 32 share TLB slot 0 (32-entry direct-mapped TLB).
		va := mmu.VirtAddr((i % 2) * 32 * mmu.PageSize)
		if _, err := m.Translate(va, mmu.Read, mmu.PrivApp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMUTranslateTLBHit: repeated accesses within one page — the TLB
// fast path that skips the three-level walk.
func BenchmarkMMUTranslateTLBHit(b *testing.B) {
	m := mmu.New(1 << 20)
	if err := m.MapSpace(mmu.SpaceSpec{Partition: "A", Descriptors: []mmu.Descriptor{
		{Section: mmu.SectionData, Base: 0, Size: 64 * mmu.PageSize,
			AppPerms: mmu.Read | mmu.Write, POSPerms: mmu.Read | mmu.Write},
	}}); err != nil {
		b.Fatal(err)
	}
	if err := m.SetContext("A"); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Translate(0x100, mmu.Read, mmu.PrivApp); err != nil {
		b.Fatal(err) // prime the TLB
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Translate(0x100+mmu.VirtAddr(i%256), mmu.Read, mmu.PrivApp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMUTranslateFault: the fault path (unmapped address).
func BenchmarkMMUTranslateFault(b *testing.B) {
	m := mmu.New(1 << 20)
	if err := m.MapSpace(mmu.SpaceSpec{Partition: "A", Descriptors: []mmu.Descriptor{
		{Section: mmu.SectionData, Base: 0, Size: mmu.PageSize,
			AppPerms: mmu.Read, POSPerms: mmu.Read},
	}}); err != nil {
		b.Fatal(err)
	}
	if err := m.SetContext("A"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Translate(0x0800_0000, mmu.Read, mmu.PrivApp); err == nil {
			b.Fatal("expected fault")
		}
	}
}

// --- F8: offline tooling ---------------------------------------------------------

// BenchmarkPSTSynthesis: EDF-based generation of a Fig. 8-scale table.
func BenchmarkPSTSynthesis(b *testing.B) {
	reqs := []model.Requirement{
		{Partition: "P1", Cycle: 1300, Budget: 200},
		{Partition: "P2", Cycle: 650, Budget: 100},
		{Partition: "P3", Cycle: 650, Budget: 100},
		{Partition: "P4", Cycle: 1300, Budget: 100},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Synthesize("bench", reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulability: two-level response-time analysis of a partition
// task set against the Fig. 8 supply.
func BenchmarkSchedulability(b *testing.B) {
	sys := model.Fig8System()
	ts := model.TaskSet{Partition: "P4", Tasks: []model.TaskSpec{
		{Name: "a", Period: 1300, Deadline: 1300, BasePriority: 1, WCET: 200, Periodic: true},
		{Name: "b", Period: 1300, Deadline: 1300, BasePriority: 5, WCET: 100, Periodic: true},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.AnalyzePartition(&sys.Schedules[0], ts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelVerify: eqs. (21)–(23) verification of the Fig. 8 system.
func BenchmarkModelVerify(b *testing.B) {
	sys := model.Fig8System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := model.Verify(sys); !r.OK() {
			b.Fatal("must verify")
		}
	}
}

// --- E*: full module --------------------------------------------------------------

func benchModuleTick(b *testing.B, opts workload.Options) {
	m, err := core.NewModule(workload.Config(opts))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModuleTickSatellite: one full system tick of the Sect. 6
// prototype — Algorithm 1 + Algorithm 2 + Algorithm 3 + process scheduling
// and one granted process tick.
func BenchmarkModuleTickSatellite(b *testing.B) {
	benchModuleTick(b, workload.Options{TraceCapacity: -1})
}

// BenchmarkModuleTickSatelliteFaulty: same with the injected fault (adds
// detection, HM reporting and restart along the run).
func BenchmarkModuleTickSatelliteFaulty(b *testing.B) {
	benchModuleTick(b, workload.Options{TraceCapacity: -1, InjectFault: true})
}

// BenchmarkModuleTickSatelliteTimeline: the nominal tick with the online
// timeliness analyzer subscribed to the spine — the full observability tax
// (metrics registry + trace ring + histograms, budget accounting, watermark
// checks, flight recorder). Must stay allocation-free in steady state.
func BenchmarkModuleTickSatelliteTimeline(b *testing.B) {
	m, err := core.NewModule(workload.Config(workload.Options{TraceCapacity: -1}))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	timeline.Attach(m.Bus(), timeline.Options{System: model.Fig8System()})
	if err := m.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModuleTickArchiveSink: the nominal tick with the bitemporal
// flight archive subscribed to the spine — framing, CRC and the sparse tick
// index on the write path. Must stay allocation-free in steady state: the
// sink appends into a preallocated staging buffer and defers sealing work
// off the hot path.
func BenchmarkModuleTickArchiveSink(b *testing.B) {
	m, err := core.NewModule(workload.Config(workload.Options{TraceCapacity: -1}))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	sink, err := archive.Open(b.TempDir(), archive.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	m.Bus().Attach(sink)
	if err := m.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticoreTick: one global tick of a dual-core module (two full
// single-core tick pipelines in lockstep) — the Sect. 8 (iv) extension.
func BenchmarkMulticoreTick(b *testing.B) {
	mkCore := func(p model.PartitionName) core.Config {
		return core.Config{
			System: &model.System{
				Partitions: []model.PartitionName{p},
				Schedules: []model.Schedule{{
					Name: "main", MTF: 100,
					Requirements: []model.Requirement{{Partition: p, Cycle: 100, Budget: 100}},
					Windows:      []model.Window{{Partition: p, Offset: 0, Duration: 100}},
				}},
			},
			TraceCapacity: -1,
			Partitions: []core.PartitionConfig{{Name: p, Init: func(sv *core.Services) {
				sv.CreateProcess(model.TaskSpec{
					Name: "w", Period: 100, Deadline: 100, BasePriority: 1,
					WCET: 50, Periodic: true,
				}, func(sv *core.Services) {
					for {
						sv.Compute(50)
						sv.PeriodicWait()
					}
				})
				sv.StartProcess("w")
				sv.SetPartitionMode(model.ModeNormal)
			}}},
		}
	}
	m, err := multicore.NewModule(multicore.Config{
		Cores: []core.Config{mkCore("A"), mkCore("B")},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	if err := m.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
