module air

go 1.22
